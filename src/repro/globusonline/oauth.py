"""The site OAuth server (Figure 7).

"With an OAuth server on GCMU endpoint ... users do not have to enter a
username or password on Globus Online.  Instead, when users access a
GCMU endpoint, they will be redirected to a web page running on the
endpoint; when they enter the username/password on that site, Globus
Online will get a short-term certificate from the endpoint via the OAuth
protocol."

Flow implemented (authorization-code style):

1. Globus Online redirects the user's browser to the site OAuth page;
2. the user posts username/password *to the site* (exposure: site only);
3. the site authenticates via the same MyProxy CA PAM stack and returns
   an authorization code to the redirect URI;
4. Globus Online exchanges the code for a short-term credential.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import AuthenticationError, PamError
from repro.myproxy.server import MyProxyOnlineCA
from repro.net.sockets import Listener, ServerSession, Service, listen, close_listener
from repro.pki.credential import Credential

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.world import World


@dataclass
class _PendingCode:
    code: str
    username: str
    credential: Credential
    redeemed: bool = False


class OAuthServer(Service):
    """A site-run OAuth authorization server fronting the MyProxy CA."""

    DEFAULT_PORT = 443

    def __init__(
        self,
        world: "World",
        host: str,
        myproxy: MyProxyOnlineCA,
        port: int = DEFAULT_PORT,
    ) -> None:
        self.world = world
        self.host = host
        self.port = port
        self.myproxy = myproxy
        self._codes: dict[str, _PendingCode] = {}
        self._counter = 0
        self._listener: Listener | None = None

    def start(self) -> "OAuthServer":
        """Bind the listening port and begin serving."""
        self._listener = listen(self.world.network, self.host, self.port, self)
        self.world.emit("oauth.start", "site OAuth server up",
                        site=self.myproxy.site_name, address=f"{self.host}:{self.port}")
        return self

    def stop(self) -> None:
        """Release the listening port."""
        if self._listener is not None:
            close_listener(self.world.network, self._listener)
            self._listener = None

    @property
    def address(self) -> tuple[str, int]:
        """The (host, port) this service listens on."""
        return (self.host, self.port)

    def open_session(self, client_host: str) -> ServerSession:  # pragma: no cover
        """Accept one connection (Service interface)."""
        raise NotImplementedError("use authorize()/exchange() directly")

    # -- the two legs of the flow -----------------------------------------------

    def authorize(self, username: str, password: str, lifetime_s: float | None = None) -> str:
        """The user's browser posts credentials to the *site's* page.

        Returns an authorization code.  The password is seen only here —
        the exposure event names the site, never the third party.
        """
        self.world.emit(
            "credential.exposure",
            "password observed",
            party=f"site:{self.myproxy.site_name}",
            username=username,
            channel="oauth-web-page",
        )
        try:
            credential = self.myproxy.logon(username, password, lifetime_s)
        except PamError as exc:
            raise AuthenticationError(f"OAuth login failed: {exc}") from exc
        self._counter += 1
        code = hashlib.sha256(
            f"{self.myproxy.site_name}:{username}:{self._counter}".encode()
        ).hexdigest()[:20]
        self._codes[code] = _PendingCode(code=code, username=username, credential=credential)
        return code

    def exchange(self, code: str) -> Credential:
        """Globus Online redeems the code for the short-term credential."""
        pending = self._codes.get(code)
        if pending is None or pending.redeemed:
            raise AuthenticationError("invalid or already-redeemed OAuth code")
        pending.redeemed = True
        self.world.emit(
            "oauth.exchange",
            "authorization code redeemed",
            site=self.myproxy.site_name,
            username=pending.username,
        )
        return pending.credential
