"""Globus Online transfer jobs: monitoring, retry, checkpoint restart.

Figure 6's recovery story: "If any failure occurs during the transfer,
Globus Online will use the short-term certificate to reauthenticate with
the endpoints on the user's behalf and restart the transfer from the
last checkpoint."  ``run_job`` is that loop: each attempt opens fresh
control channels (re-authentication with the stored activation
credentials), installs a DCSC context automatically when the two
endpoints live in different trust domains (Section VIII: "all the
transfers done by Globus Online are third-party transfers"), and resumes
from the accumulated restart markers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import (
    ActivationExpiredError,
    LinkDownError,
    ReproError,
    TransferError,
    TransferFaultError,
)
from repro.gridftp.client import GridFTPClient
from repro.gridftp.restart import ByteRangeSet
from repro.gridftp.third_party import third_party_transfer
from repro.gridftp.transfer import TransferOptions, TransferResult
from repro.gridftp.tuning import DatasetShape, autotune
from repro.recovery import RecoveryEngine

if TYPE_CHECKING:  # pragma: no cover
    from repro.globusonline.service import GlobusOnline, GOUser


class JobStatus(enum.Enum):
    """Lifecycle of a transfer job.

    Jobs now flow through the fleet scheduler: QUEUED on submission,
    CLAIMED when a worker leases the task, ACTIVE while bytes move, and
    finally SUCCEEDED or FAILED.  A lapsed lease sends a CLAIMED job
    back to QUEUED.
    """

    QUEUED = "queued"
    CLAIMED = "claimed"
    ACTIVE = "active"
    SUCCEEDED = "succeeded"
    FAILED = "failed"


@dataclass
class BatchTransferJob:
    """A multi-file (directory-style) transfer task.

    Globus Online's normal unit of work is a folder, not a file; the
    batch job pipelines the control traffic, reuses mode E data channels
    and moves ``concurrency`` files at once.
    """

    job_id: str
    user: str
    src_endpoint: str
    dst_endpoint: str
    pairs: tuple[tuple[str, str], ...]
    submitted_at: float
    status: JobStatus = JobStatus.QUEUED
    files_done: int = 0
    bytes_done: int = 0
    error: str = ""
    completed_at: float | None = None
    #: the activation lapsed while the job sat in the queue; re-activate
    needs_reactivation: bool = False


@dataclass
class TransferJob:
    """One submitted transfer task."""

    job_id: str
    user: str
    src_endpoint: str
    src_path: str
    dst_endpoint: str
    dst_path: str
    submitted_at: float
    max_attempts: int = 5
    status: JobStatus = JobStatus.QUEUED
    attempts: int = 0
    #: the activation lapsed while the job sat in the queue; re-activate
    needs_reactivation: bool = False
    faults_survived: int = 0
    result: TransferResult | None = None
    error: str = ""
    checkpoint: ByteRangeSet = field(default_factory=ByteRangeSet)
    completed_at: float | None = None
    #: set after a successful post-transfer CKSM comparison
    checksum_verified: bool = False

    @property
    def bytes_at_checkpoint(self) -> int:
        """Bytes safely received before the interruption."""
        return self.checkpoint.total_bytes()


def _connect_sessions(go: "GlobusOnline", user: "GOUser", job: TransferJob):
    """(Re-)authenticate to both endpoints with the activation credentials."""
    now = go.world.now
    src_rec = go.endpoint(job.src_endpoint)
    dst_rec = go.endpoint(job.dst_endpoint)
    src_act = user.activation_for(job.src_endpoint, now)
    dst_act = user.activation_for(job.dst_endpoint, now)
    src_client = GridFTPClient(
        go.world, go.host, credential=src_act.credential, trust=src_rec.trust,
        username=user.name,
    )
    dst_client = GridFTPClient(
        go.world, go.host, credential=dst_act.credential, trust=dst_rec.trust,
        username=user.name,
    )
    # pooled: repeat jobs between the same (user, endpoint) pair reuse the
    # authenticated control channel instead of re-running the handshake
    src_session = src_client.connect(src_rec.gridftp_address, pooled=True)
    dst_session = dst_client.connect(dst_rec.gridftp_address, pooled=True)
    return src_rec, dst_rec, src_act, dst_act, src_session, dst_session


def _wait_for_outage(go: "GlobusOnline", job: TransferJob) -> None:
    """Advance the clock until every path the job needs is up again.

    Backoff between attempts is the recovery engine's business; this only
    waits out *known* outages (a no-op when the paths are clear).
    """
    world = go.world
    src_host = go.endpoint(job.src_endpoint).gridftp_address[0]
    dst_host = go.endpoint(job.dst_endpoint).gridftp_address[0]
    links: set[str] = set()
    hosts: set[str] = set()
    for a, b in ((src_host, dst_host), (go.host, src_host), (go.host, dst_host)):
        try:
            path = world.network.path(a, b)
        except Exception:
            continue
        links.update(path.link_ids)
        hosts.update(path.hosts)
    clear = world.faults.next_clear_time(links, hosts, world.now)
    if clear > world.now:
        world.advance_to(clear)


def _cross_domain(src_rec, dst_rec) -> bool:
    """Do the endpoints share any trust anchor?  If not, DCSC is required."""
    src_fps = set(src_rec.trust.anchors)
    dst_fps = set(dst_rec.trust.anchors)
    return not (src_fps & dst_fps)


def run_job(
    go: "GlobusOnline",
    user: "GOUser",
    job: TransferJob,
    options: TransferOptions | None = None,
) -> TransferJob:
    """Drive a job to SUCCEEDED or FAILED (advancing virtual time).

    The whole job runs under a ``globusonline.job`` tracer span; each
    attempt's transfer gets a child ``attempt`` span and re-attempts
    count into ``retries_total{component="globusonline"}``.
    """
    with go.world.tracer.span("globusonline.job", job=job.job_id, user=job.user):
        return _run_job(go, user, job, options)


def _run_job(
    go: "GlobusOnline",
    user: "GOUser",
    job: TransferJob,
    options: TransferOptions | None = None,
) -> TransferJob:
    world = go.world
    job.status = JobStatus.ACTIVE
    engine = RecoveryEngine(
        world,
        policy=go.retry_policy.with_(max_attempts=job.max_attempts),
        breaker=go.breaker,
        component="globusonline",
        loop_span_name="globusonline.retry",
        attempt_span_name="attempt",
    )

    def operation(att) -> TransferResult:
        job.attempts = att.number
        # re-authentication with the stored short-term certificate is
        # exactly the Figure 6 story: each attempt opens fresh channels.
        src_rec, dst_rec, src_act, _, src_session, dst_session = _connect_sessions(
            go, user, job
        )
        try:
            opts = options
            if opts is None:
                size = src_session.size(job.src_path)
                path = world.network.path(
                    src_rec.gridftp_address[0], dst_rec.gridftp_address[0]
                )
                opts = autotune(DatasetShape(file_count=1, total_bytes=size), path)
            # Globus Online transfers are always third-party; cross-domain
            # endpoint pairs get a DCSC context built from the source
            # activation credential (the Figure 5 strategy).
            dcsc_credential = src_act.credential if _cross_domain(src_rec, dst_rec) else None
            result = third_party_transfer(
                src_session,
                job.src_path,
                dst_session,
                job.dst_path,
                opts,
                use_dcsc=dcsc_credential,
                restart=att.checkpoint,
            )
            # post-transfer integrity: CKSM on both endpoints must agree
            # (the hosted service's end-to-end check).  A mismatch is not
            # restartable — the bytes landed but are wrong.
            src_sum = src_session.checksum(job.src_path)
            dst_sum = dst_session.checksum(job.dst_path)
            if src_sum != dst_sum:
                raise TransferError(
                    f"checksum mismatch after transfer: {src_sum} != {dst_sum}"
                )
            job.checksum_verified = True
            return result
        finally:
            for session in (src_session, dst_session):
                try:
                    session.release()
                except Exception:
                    pass

    def on_failure(exc: BaseException, attempt: int, checkpoint) -> None:
        job.error = str(exc)
        if isinstance(exc, TransferFaultError):
            job.faults_survived += 1
            job.checkpoint = checkpoint.copy() if checkpoint is not None else ByteRangeSet()
            world.emit(
                "globusonline.job.fault", "transfer interrupted; will restart",
                job=job.job_id, checkpoint_bytes=job.bytes_at_checkpoint,
                attempt=attempt,
            )

    try:
        outcome = engine.run(
            operation,
            endpoint=f"{job.src_endpoint}->{job.dst_endpoint}",
            wait_clear=lambda _n: _wait_for_outage(go, job),
            retry_on=(TransferFaultError, LinkDownError),
            on_failure=on_failure,
            describe=f"job {job.job_id}",
            span_fields={"job": job.job_id},
        )
    except ReproError as exc:
        job.error = str(exc)
        job.status = JobStatus.FAILED
        if isinstance(exc, ActivationExpiredError):
            # the execution-time pre-flight caught a credential that
            # lapsed while the job sat in the queue: the job must not be
            # retried with the stale activation — the user re-activates.
            job.needs_reactivation = True
            world.emit(
                "globusonline.job.reactivation_required",
                "activation expired while queued; re-activate the endpoint",
                job=job.job_id, endpoint=exc.endpoint, expired_at=exc.expired_at,
            )
        world.emit("globusonline.job.failed", "job failed", job=job.job_id,
                   reason=job.error)
        return job

    job.status = JobStatus.SUCCEEDED
    job.result = outcome.result
    job.completed_at = world.now
    world.emit(
        "globusonline.job.succeeded", "job complete",
        job=job.job_id, attempts=job.attempts, nbytes=outcome.result.nbytes,
        faults_survived=job.faults_survived,
    )
    return job


def run_batch_job(
    go: "GlobusOnline",
    user: "GOUser",
    job: BatchTransferJob,
    options: TransferOptions | None = None,
) -> BatchTransferJob:
    """Drive a multi-file job: pipelined control, cached data channels,
    concurrent file lanes.

    Auto-tunes from the whole dataset shape when ``options`` is None.
    Fault handling is per-job (a mid-batch outage fails the job; resubmit
    resumes cheaply because completed files simply re-verify) — the
    single-file path owns checkpoint restart.
    """
    with go.world.tracer.span(
        "globusonline.batch", job=job.job_id, files=len(job.pairs)
    ):
        return _run_batch_job(go, user, job, options)


def _run_batch_job(
    go: "GlobusOnline",
    user: "GOUser",
    job: BatchTransferJob,
    options: TransferOptions | None = None,
) -> BatchTransferJob:
    from repro.gridftp.transfer import SinkSpec, SourceSpec

    world = go.world
    job.status = JobStatus.ACTIVE
    try:
        src_rec, dst_rec, src_act, _, src_session, dst_session = _connect_sessions(
            go, user, job
        )
    except ReproError as exc:
        job.error = str(exc)
        job.status = JobStatus.FAILED
        if isinstance(exc, ActivationExpiredError):
            job.needs_reactivation = True
            world.emit(
                "globusonline.job.reactivation_required",
                "activation expired while queued; re-activate the endpoint",
                job=job.job_id, endpoint=exc.endpoint, expired_at=exc.expired_at,
            )
        return job
    try:
        # pipelined SIZE sweep for auto-tuning (and early missing-file errors)
        from repro.gridftp.replies import Reply, raise_for_reply

        sizes = []
        for lines in src_session.channel.pipeline(
            [f"SIZE {sp}" for sp, _ in job.pairs]
        ):
            sizes.append(int(raise_for_reply(Reply.parse(lines[-1])).text))
        opts = options
        if opts is None:
            path = world.network.path(
                src_rec.gridftp_address[0], dst_rec.gridftp_address[0]
            )
            opts = autotune(DatasetShape.from_sizes(sizes), path)
        src_session.apply_options(opts)
        dst_session.apply_options(opts)
        if _cross_domain(src_rec, dst_rec):
            from repro.gridftp.third_party import install_dcsc_contexts

            install_dcsc_contexts(src_session, dst_session, src_act.credential)
        addr = dst_session.passive()
        src_session.port(addr)

        # pipeline the STOR/RETR pairs on their respective channels
        for lines in dst_session.channel.pipeline(
            [f"STOR {dp}" for _, dp in job.pairs]
        ):
            raise_for_reply(Reply.parse(lines[-1]))
        for lines in src_session.channel.pipeline(
            [f"RETR {sp}" for sp, _ in job.pairs]
        ):
            raise_for_reply(Reply.parse(lines[-1]))

        engine = src_session.client.engine
        k = max(1, opts.concurrency)
        lane_time = [0.0] * k
        for i, ((sp, dp), size) in enumerate(zip(job.pairs, sizes)):
            recv_intent = dst_session.server_session.take_intent()
            send_intent = src_session.server_session.take_intent()
            sink = dst_session.server_session.make_sink(recv_intent, size)
            source = SourceSpec(
                hosts=src_session.server.dtp_hosts,
                data=send_intent.data,
                security=src_session.server_session.data_channel_security(),
            )
            sink_spec = SinkSpec(
                hosts=dst_session.server.dtp_hosts,
                sink=sink,
                security=dst_session.server_session.data_channel_security(),
            )
            result = engine.execute(
                source, sink_spec, opts,
                charge_setup=(i < k), advance_clock=False,
            )
            lane = min(range(k), key=lane_time.__getitem__)
            lane_time[lane] += result.duration_s
            job.files_done += 1
            job.bytes_done += result.nbytes
            src_session.server.record_transfer(
                result, "retrieve", sp, mode=src_session.server_session.mode
            )
            dst_session.server.record_transfer(
                result, "store", dp, mode=dst_session.server_session.mode
            )
        world.advance(max(lane_time) if lane_time else 0.0)
        job.status = JobStatus.SUCCEEDED
        job.completed_at = world.now
        world.emit("globusonline.batch.succeeded", "batch complete",
                   job=job.job_id, files=job.files_done, nbytes=job.bytes_done)
        return job
    except ReproError as exc:
        job.error = str(exc)
        job.status = JobStatus.FAILED
        world.emit("globusonline.batch.failed", "batch failed",
                   job=job.job_id, reason=job.error, files_done=job.files_done)
        return job
    finally:
        for session in (src_session, dst_session):
            try:
                session.release()
            except Exception:
                pass
