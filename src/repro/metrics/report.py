"""Plain-text table/series rendering for benchmark output.

Every benchmark prints its reproduction of a paper artifact through
these helpers so the output reads like the paper's own tables: aligned
columns, a caption line, units spelled out.
"""

from __future__ import annotations

from typing import Any, Sequence


def render_table(
    caption: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
) -> str:
    """An aligned plain-text table with a caption."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [caption, "=" * len(caption)]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    caption: str,
    x_label: str,
    xs: Sequence[Any],
    columns: dict[str, Sequence[Any]],
    max_points: int = 24,
) -> str:
    """A downsampled multi-column series (Figure-style data)."""
    n = len(xs)
    if n == 0:
        return f"{caption}\n(empty series)"
    step = max(1, n // max_points)
    idx = list(range(0, n, step))
    if idx[-1] != n - 1:
        idx.append(n - 1)
    headers = [x_label, *columns.keys()]
    rows = [[xs[i], *[col[i] for col in columns.values()]] for i in idx]
    return render_table(caption, headers, rows)


def render_metrics(registry, caption: str = "Metrics") -> str:
    """The human view of a :class:`~repro.telemetry.metrics.MetricsRegistry`.

    One row per labelled series (histograms show count and sum), in the
    same aligned-table style every benchmark prints.
    """
    rows = []
    for sample in registry.samples():
        labels = ", ".join(f"{k}={v}" for k, v in sample.labels)
        rows.append([sample.name, labels, sample.value])
    return render_table(caption, ["metric", "labels", "value"], rows)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:,.2f}"
    if isinstance(value, int) and abs(value) >= 10000:
        return f"{value:,d}"
    return str(value)
