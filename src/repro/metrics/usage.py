"""Usage records and the collector behind Figure 1.

Live GridFTP servers with ``usage_reporting`` enabled emit a
``usage.record`` event per transfer; a :class:`UsageCollector`
subscribed to the world log turns those into per-day aggregates —
exactly the transfers/day and bytes/day series the paper's Figure 1
plots.  The fleet generator can also feed pre-aggregated days in
directly (one cannot simulate 10 million individual transfers a day,
but the aggregation path is identical).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.logging import Event, EventLog
from repro.util.units import DAY


@dataclass(frozen=True)
class UsageRecord:
    """One transfer's usage report."""

    time: float
    server: str
    nbytes: int
    duration_s: float
    direction: str = ""
    streams: int = 1
    stripes: int = 1


@dataclass
class DailyUsage:
    """Aggregate for one day bucket."""

    day_index: int
    transfers: int = 0
    bytes_moved: int = 0
    servers: set[str] | None = None

    def __post_init__(self) -> None:
        if self.servers is None:
            self.servers = set()

    @property
    def server_count(self) -> int:
        """Distinct servers that reported this day."""
        return len(self.servers or ())


class UsageCollector:
    """Aggregates usage records into day buckets."""

    def __init__(self, day_length_s: float = DAY) -> None:
        self.day_length_s = day_length_s
        self._days: dict[int, DailyUsage] = {}
        self.total_records = 0

    # -- ingestion ----------------------------------------------------------

    def add(self, record: UsageRecord) -> None:
        """Ingest one per-transfer record."""
        day = int(record.time // self.day_length_s)
        bucket = self._days.setdefault(day, DailyUsage(day_index=day))
        bucket.transfers += 1
        bucket.bytes_moved += record.nbytes
        bucket.servers.add(record.server)
        self.total_records += 1

    def add_aggregate(
        self, day_index: int, transfers: int, bytes_moved: int, servers: int = 0
    ) -> None:
        """Ingest a pre-aggregated day (fleet generator path)."""
        bucket = self._days.setdefault(day_index, DailyUsage(day_index=day_index))
        bucket.transfers += transfers
        bucket.bytes_moved += bytes_moved
        for i in range(servers):
            bucket.servers.add(f"fleet-server-{day_index}-{i}")
        self.total_records += transfers

    def subscribe_to(self, log: EventLog) -> None:
        """Attach to a world event log; ``usage.record`` events flow in."""
        log.subscribe(self._on_event)

    def _on_event(self, event: Event) -> None:
        if event.category != "usage.record":
            return
        self.add(
            UsageRecord(
                time=event.time,
                server=str(event.fields.get("server", "?")),
                nbytes=int(event.fields.get("nbytes", 0)),
                duration_s=float(event.fields.get("duration", 0.0)),
                direction=str(event.fields.get("direction", "")),
                streams=int(event.fields.get("streams", 1)),
                stripes=int(event.fields.get("stripes", 1)),
            )
        )

    # -- queries ---------------------------------------------------------------

    def days(self) -> list[DailyUsage]:
        """All day buckets, in order."""
        return [self._days[k] for k in sorted(self._days)]

    def day(self, day_index: int) -> DailyUsage:
        """The bucket for ``day_index`` (empty if nothing reported)."""
        return self._days.get(day_index, DailyUsage(day_index=day_index))

    def totals(self) -> tuple[int, int]:
        """(total transfers, total bytes) across all days."""
        t = sum(d.transfers for d in self._days.values())
        b = sum(d.bytes_moved for d in self._days.values())
        return t, b

    def series(self) -> tuple[list[int], list[int], list[int]]:
        """(day_indices, transfers_per_day, bytes_per_day) for plotting."""
        days = self.days()
        return (
            [d.day_index for d in days],
            [d.transfers for d in days],
            [d.bytes_moved for d in days],
        )
