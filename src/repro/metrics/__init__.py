"""Usage metrics: records, collection, aggregation, table rendering."""

from repro.metrics.usage import UsageRecord, UsageCollector, DailyUsage
from repro.metrics.report import render_table, render_series, render_metrics

__all__ = [
    "UsageRecord",
    "UsageCollector",
    "DailyUsage",
    "render_table",
    "render_series",
    "render_metrics",
]
