"""Chain validation against trust stores.

This is the code path whose *failure* motivates DCSC (Figure 4): endpoint
B receives credential A, walks its chain, and cannot reach any of B's
trust anchors, so validation raises :class:`UntrustedIssuerError`.

Validation rules:

* the chain is leaf-first; each certificate's issuer DN must equal the
  next certificate's subject DN, with a valid signature under that
  certificate's key;
* non-leaf, non-proxy signers must be CA certificates;
* proxy certificates must extend their signer's subject by one CN and be
  signed by the *end-entity* (or a previous proxy), per RFC 3820;
* the walk must terminate at a trust anchor: either a chain certificate
  that is itself an anchor, or a chain head whose issuer is an anchor;
* every certificate must be inside its validity window at ``now``;
* if the trust store has a signing policy for an anchor CA, subjects
  signed by that CA must match the policy (DCSC-supplied extra anchors
  are policy-exempt, per paper Section V.A).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import (
    CertificateError,
    SigningPolicyError,
    UntrustedIssuerError,
)
from repro.pki.certificate import Certificate
from repro.pki.dn import DistinguishedName
from repro.pki.policy import SigningPolicy
from repro.pki.proxy import is_proxy_subject, strip_proxy_cns
from repro.util import opcount

#: process-wide TrustStore identity source (see TrustStore.uid)
_TRUST_UIDS = itertools.count()


@dataclass(frozen=True)
class ValidationResult:
    """Outcome of a successful chain validation."""

    subject: DistinguishedName  # leaf subject (may include proxy CNs)
    identity: DistinguishedName  # subject with proxy CNs stripped
    anchor: Certificate  # the trust anchor that terminated the walk
    chain_length: int
    policy_checked: bool


@dataclass
class TrustStore:
    """The trusted-certificates directory of one endpoint.

    ``anchors`` maps certificate fingerprints to trusted (usually
    self-signed CA) certificates; ``policies`` maps anchor fingerprints to
    signing policies.  Configuring this directory is step (g) of the
    conventional install in paper Section III.A; GCMU populates it with
    just the local MyProxy CA.
    """

    anchors: dict[str, Certificate] = field(default_factory=dict)
    policies: dict[str, SigningPolicy] = field(default_factory=dict)
    #: successful validate_chain results against this store, keyed by the
    #: participating certificate fingerprints; cleared whenever the
    #: anchor set changes (certificates themselves are immutable)
    _memo: dict = field(default_factory=dict, repr=False, compare=False)
    #: stable process-unique identity, safe to embed in cache keys (unlike
    #: ``id()``, never reused after garbage collection)
    uid: int = field(default_factory=lambda: next(_TRUST_UIDS), repr=False, compare=False)
    #: bumped whenever the anchor set changes; session/pool caches keyed on
    #: (uid, version) self-invalidate when an operator edits the store
    version: int = field(default=0, repr=False, compare=False)

    def add_anchor(self, cert: Certificate, policy: SigningPolicy | None = None) -> None:
        """Trust ``cert`` as a root, optionally with a signing policy."""
        fp = cert.fingerprint()
        self.anchors[fp] = cert
        if policy is not None:
            self.policies[fp] = policy
        self._memo.clear()
        self.version += 1

    def remove_anchor(self, cert: Certificate) -> None:
        """Stop trusting a root (and drop its policy)."""
        fp = cert.fingerprint()
        self.anchors.pop(fp, None)
        self.policies.pop(fp, None)
        self._memo.clear()
        self.version += 1

    def find_anchor(self, cert: Certificate) -> Certificate | None:
        """The anchor equal to ``cert`` (by fingerprint), if trusted."""
        return self.anchors.get(cert.fingerprint())

    def find_issuer_anchor(self, cert: Certificate) -> Certificate | None:
        """An anchor whose subject matches ``cert.issuer`` and whose key
        verifies ``cert``'s signature."""
        for anchor in self.anchors.values():
            if anchor.subject == cert.issuer and cert.verify_signature(anchor.public_key):
                return anchor
        return None

    def policy_for(self, anchor: Certificate) -> SigningPolicy | None:
        """The signing policy bound to an anchor, if any."""
        return self.policies.get(anchor.fingerprint())

    def copy(self) -> "TrustStore":
        """Shallow copy (anchors/policies dicts duplicated)."""
        return TrustStore(anchors=dict(self.anchors), policies=dict(self.policies))

    def __len__(self) -> int:
        return len(self.anchors)


def validate_chain(
    chain: Sequence[Certificate],
    trust: TrustStore,
    now: float,
    extra_anchors: Iterable[Certificate] = (),
    extra_intermediates: Iterable[Certificate] = (),
) -> ValidationResult:
    """Validate a leaf-first chain; return identity or raise.

    ``extra_anchors`` are policy-exempt trust anchors supplied out of band
    (the self-signed certificates of a DCSC P blob).  ``extra_intermediates``
    are additional certificates available to complete the chain (the
    non-self-signed certificates of a DCSC P blob).
    """
    if not chain:
        raise CertificateError("empty certificate chain")

    extra_anchors = tuple(extra_anchors)
    extra_intermediates = tuple(extra_intermediates)

    # The walk's outcome depends only on the participating certificates
    # (immutable), the anchor set (memo cleared on change), and whether
    # every chain certificate is inside its validity window.  A prior
    # success therefore replays as long as ``now`` stays inside the
    # chain's common window; anything else falls through to the full walk.
    memo_key = (
        tuple(c.fingerprint() for c in chain),
        tuple(c.fingerprint() for c in extra_anchors),
        tuple(c.fingerprint() for c in extra_intermediates),
    )
    hit = trust._memo.get(memo_key)
    if hit is not None:
        result, lo, hi = hit
        if lo <= now <= hi:
            opcount.bump("chain.validate.memo")
            return result
    opcount.bump("chain.validate.full")

    extra_anchor_fps = {c.fingerprint(): c for c in extra_anchors}
    pool = list(chain) + list(extra_intermediates)

    # -- validity windows ------------------------------------------------
    for cert in chain:
        if now < cert.not_before:
            raise CertificateError(
                f"certificate for {cert.subject} not yet valid at t={now}"
            )
        if now > cert.not_after:
            raise CertificateError(f"certificate for {cert.subject} expired at t={now}")

    # -- walk leaf -> anchor, completing the chain from the pool ----------
    walked: list[Certificate] = [chain[0]]
    current = chain[0]
    seen_fps = {current.fingerprint()}
    policy_checked = False
    anchor: Certificate | None = None

    for _ in range(32):  # hard bound against pathological loops
        # is the current certificate itself an anchor?
        fp = current.fingerprint()
        if fp in extra_anchor_fps:
            anchor = extra_anchor_fps[fp]
            break
        store_anchor = trust.find_anchor(current)
        if store_anchor is not None:
            anchor = store_anchor
            break
        # does a trust-store anchor directly sign the current certificate?
        issuer_anchor = trust.find_issuer_anchor(current)
        if issuer_anchor is not None:
            policy = trust.policy_for(issuer_anchor)
            if policy is not None:
                if not policy.permits(current.subject):
                    raise SigningPolicyError(
                        f"{current.subject} violates signing policy of {issuer_anchor.subject}"
                    )
                policy_checked = True
            anchor = issuer_anchor
            break

        # does a policy-exempt extra anchor (DCSC blob) sign it?
        signer = _find_signer(current, extra_anchor_fps.values())
        if signer is not None:
            anchor = signer
            break

        # a self-signed certificate that is not an anchor is a dead end:
        # this is the Figure 4 failure (CA-A unknown to endpoint B).
        if current.is_self_signed:
            raise UntrustedIssuerError(
                f"no trusted path for {chain[0].subject}: root {current.subject} "
                f"is not a trust anchor",
                issuer=str(current.issuer),
            )

        # otherwise find the issuer within the pool and keep walking
        parent = _find_signer(current, pool)
        if parent is None:
            raise UntrustedIssuerError(
                f"no trusted path for {chain[0].subject}: issuer {current.issuer} "
                f"is not among the trust anchors",
                issuer=str(current.issuer),
            )
        if parent.fingerprint() in seen_fps:
            raise CertificateError("certificate chain contains a cycle")
        _check_signer_authority(current, parent)
        walked.append(parent)
        seen_fps.add(parent.fingerprint())
        current = parent
    else:
        raise CertificateError("certificate chain too long")

    assert anchor is not None
    # if the anchor differs from the final walked cert, it signs it; check
    # CA authority of the anchor unless the final cert IS the anchor.
    final = walked[-1]
    if anchor.fingerprint() != final.fingerprint():
        if not anchor.is_ca and not _proxy_pair_ok(final, anchor):
            raise CertificateError(
                f"trust anchor {anchor.subject} is not a CA and cannot sign {final.subject}"
            )

    subject = chain[0].subject
    result = ValidationResult(
        subject=subject,
        identity=strip_proxy_cns(subject),
        anchor=anchor,
        chain_length=len(walked),
        policy_checked=policy_checked,
    )
    if len(trust._memo) >= 4096:
        trust._memo.pop(next(iter(trust._memo)))
    trust._memo[memo_key] = (
        result,
        max(c.not_before for c in chain),
        min(c.not_after for c in chain),
    )
    return result


def _find_signer(cert: Certificate, candidates: Iterable[Certificate]) -> Certificate | None:
    """A candidate whose subject matches cert.issuer and key verifies it."""
    for cand in candidates:
        if cand.subject == cert.issuer and cert.verify_signature(cand.public_key):
            return cand
    return None


def _proxy_pair_ok(child: Certificate, parent: Certificate) -> bool:
    """True iff ``child`` is a well-formed proxy of ``parent``."""
    return (
        child.is_proxy
        and is_proxy_subject(child.subject, parent.subject)
        and child.issuer == parent.subject
    )


def _check_signer_authority(child: Certificate, parent: Certificate) -> None:
    """Enforce who may sign what: CAs sign anything; EECs sign only proxies."""
    if child.is_proxy:
        if not _proxy_pair_ok(child, parent):
            raise CertificateError(
                f"malformed proxy: {child.subject} does not properly extend {parent.subject}"
            )
        return
    if not parent.is_ca:
        raise CertificateError(
            f"{parent.subject} is not a CA and cannot sign end-entity {child.subject}"
        )
