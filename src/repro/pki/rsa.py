"""A small, real RSA implementation.

Key generation uses Miller-Rabin probable primes; signing is
hash-and-sign (SHA-256 digest interpreted as an integer, exponentiated
with the private key).  Keys default to 512 bits — cryptographically toy,
but the *behaviour* is genuine: signatures verify only with the matching
public key, any tampering with signed bytes breaks verification, and
that is precisely what the trust-root logic of Figures 4-5 exercises.

No padding scheme is implemented (the digest is orders of magnitude
smaller than the modulus); do not reuse outside this simulation.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

from repro.util import opcount

try:  # pragma: no cover - exercised whenever sympy is present
    from sympy import isprime as _bpsw_isprime
except Exception:  # pragma: no cover - environments without sympy
    _bpsw_isprime = None

# Small primes for fast trial division before Miller-Rabin.
_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
]

_MR_ROUNDS = 24


@dataclass(frozen=True)
class PublicKey:
    """RSA public key (n, e)."""

    n: int
    e: int

    def to_dict(self) -> dict:
        """Plain-dict form (serialization)."""
        return {"n": f"{self.n:x}", "e": self.e}

    @staticmethod
    def from_dict(d: dict) -> "PublicKey":
        """Rebuild from :meth:`to_dict` output."""
        return PublicKey(n=int(d["n"], 16), e=int(d["e"]))

    def fingerprint(self) -> str:
        """Short stable identifier for the key."""
        return hashlib.sha256(f"{self.n:x}:{self.e:x}".encode()).hexdigest()[:16]


@dataclass(frozen=True)
class KeyPair:
    """RSA key pair.  ``public`` carries (n, e); ``d`` is the private exponent."""

    n: int
    e: int
    d: int

    @property
    def public(self) -> PublicKey:
        """The public half of the key pair."""
        return PublicKey(n=self.n, e=self.e)

    def to_dict(self) -> dict:
        """Plain-dict form (serialization)."""
        return {"n": f"{self.n:x}", "e": self.e, "d": f"{self.d:x}"}

    @staticmethod
    def from_dict(d: dict) -> "KeyPair":
        """Rebuild from :meth:`to_dict` output."""
        return KeyPair(n=int(d["n"], 16), e=int(d["e"]), d=int(d["d"], 16))


def _is_probable_prime(n: int, rng: random.Random) -> bool:
    """Miller-Rabin primality test."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    # write n-1 = d * 2^r with d odd
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for round_no in range(_MR_ROUNDS):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            pass
        else:
            for _ in range(r - 1):
                x = pow(x, 2, n)
                if x == n - 1:
                    break
            else:
                return False
        # A genuinely prime n passes every round, so the loop consumes
        # exactly _MR_ROUNDS randrange draws and no other randomness.
        # Once the first round passes, a deterministic BPSW check settles
        # primality; for primes we replay the remaining draws and skip
        # their modexps — bit-identical verdict and rng stream, ~6x
        # cheaper.  Composites that slip past round one (rare
        # pseudoprimes) fall back to the full loop unchanged.
        if round_no == 0 and _bpsw_isprime is not None and _bpsw_isprime(n):
            for _ in range(_MR_ROUNDS - 1):
                rng.randrange(2, n - 1)
            return True
    return True


def _random_prime(bits: int, rng: random.Random) -> int:
    """A probable prime with exactly ``bits`` bits."""
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if _is_probable_prime(candidate, rng):
            return candidate


#: (bits, rng state) -> (keypair, rng state after generation).  GSI
#: delegation re-derives its rng stream from the world seed on every
#: login, so fleet runs request the identical (bits, state) pair
#: thousands of times; replaying the memo — same keypair, same
#: post-generation state — is bit-for-bit identical to regenerating.
_KEYGEN_MEMO: dict[tuple[int, tuple], tuple[KeyPair, tuple]] = {}
_KEYGEN_MEMO_MAX = 256


def generate_keypair(bits: int = 512, rng: random.Random | None = None) -> KeyPair:
    """Generate an RSA key pair of (approximately) ``bits`` modulus bits."""
    if bits < 64:
        raise ValueError("modulus must be at least 64 bits")
    rng = rng or random.Random()
    memo_key = (bits, rng.getstate())
    hit = _KEYGEN_MEMO.get(memo_key)
    if hit is not None:
        pair, post_state = hit
        rng.setstate(post_state)
        opcount.bump("rsa.keygen.memo")
        return pair
    opcount.bump("rsa.keygen.full")
    e = 65537
    half = bits // 2
    while True:
        p = _random_prime(half, rng)
        q = _random_prime(bits - half, rng)
        if p == q:
            continue
        n = p * q
        phi = (p - 1) * (q - 1)
        if phi % e == 0:
            continue
        d = pow(e, -1, phi)
        pair = KeyPair(n=n, e=e, d=d)
        # Stash the CRT parameters on the instance (KeyPair is frozen, so
        # via object.__setattr__): signing with p/q halves the modulus
        # width, ~4x faster, and produces the identical signature integer.
        # Keys rebuilt from serialized (n, e, d) simply lack the stash and
        # fall back to the plain private-exponent path.
        object.__setattr__(
            pair, "_crt", (p, q, d % (p - 1), d % (q - 1), pow(q, -1, p))
        )
        if len(_KEYGEN_MEMO) >= _KEYGEN_MEMO_MAX:
            _KEYGEN_MEMO.pop(next(iter(_KEYGEN_MEMO)))
        _KEYGEN_MEMO[memo_key] = (pair, rng.getstate())
        return pair


def _digest_int(data: bytes, n: int) -> int:
    """SHA-256 digest of ``data`` reduced into the modulus group."""
    h = int.from_bytes(hashlib.sha256(data).digest(), "big")
    return h % n


def sign(key: KeyPair, data: bytes) -> int:
    """Sign ``data`` with the private exponent; returns the signature integer.

    Uses the CRT decomposition when the key carries one (generated keys
    do); the result is bit-identical to ``pow(m, d, n)``.
    """
    opcount.bump("rsa.sign")
    m = _digest_int(data, key.n)
    crt = getattr(key, "_crt", None)
    if crt is None:
        return pow(m, key.d, key.n)
    p, q, dp, dq, qinv = crt
    mp = pow(m % p, dp, p)
    mq = pow(m % q, dq, q)
    return mq + ((mp - mq) * qinv % p) * q


#: (n, e, digest, signature) -> verification outcome.  Chain validation
#: re-verifies the same handful of CA/host/proxy signatures for every
#: login in a fleet run; the verdict for a fixed (key, digest, signature)
#: triple is a pure function, so replaying it is exact.  Both outcomes
#: are cached — a forged signature stays forged.
_VERIFY_MEMO: dict[tuple[int, int, int, int], bool] = {}
_VERIFY_MEMO_MAX = 8192


def verify(public: PublicKey, data: bytes, signature: int) -> bool:
    """True iff ``signature`` over ``data`` verifies with ``public``."""
    if not 0 < signature < public.n:
        return False
    digest = _digest_int(data, public.n)
    memo_key = (public.n, public.e, digest, signature)
    hit = _VERIFY_MEMO.get(memo_key)
    if hit is not None:
        opcount.bump("rsa.verify.memo")
        return hit
    opcount.bump("rsa.verify")
    ok = pow(signature, public.e, public.n) == digest
    if len(_VERIFY_MEMO) >= _VERIFY_MEMO_MAX:
        _VERIFY_MEMO.pop(next(iter(_VERIFY_MEMO)))
    _VERIFY_MEMO[memo_key] = ok
    return ok
