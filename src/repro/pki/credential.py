"""A credential: a certificate chain plus the matching private key.

The chain is ordered leaf-first: ``chain[0]`` is the certificate whose
public key matches ``key`` (possibly a proxy), followed by its issuer,
and so on up toward (but not necessarily including) a root.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CertificateError
from repro.pki.certificate import Certificate, keypair_to_pem
from repro.pki.dn import DistinguishedName
from repro.pki.rsa import KeyPair
from repro.util.encoding import pem_decode_all


#: Round-trip parse memo: PEM text produced by :meth:`Credential.to_pem`
#: (or parsed once already) -> the credential object.  Credentials are
#: immutable and ``from_pem`` is the exact inverse of ``to_pem``, so
#: handing back the original object is indistinguishable from re-parsing
#: — and every GSI login does this round trip (the client serializes,
#: the same-process server parses) once per session.
_ROUNDTRIP: dict[str, "Credential"] = {}
_ROUNDTRIP_MAX = 1024


@dataclass(frozen=True)
class Credential:
    """A usable identity: leaf-first certificate chain + private key."""

    chain: tuple[Certificate, ...]
    key: KeyPair

    def __post_init__(self) -> None:
        if not self.chain:
            raise CertificateError("credential chain cannot be empty")
        if self.chain[0].public_key != self.key.public:
            raise CertificateError("private key does not match the leaf certificate")

    @property
    def certificate(self) -> Certificate:
        """The leaf certificate."""
        return self.chain[0]

    @property
    def subject(self) -> DistinguishedName:
        """The subject distinguished name."""
        return self.chain[0].subject

    @property
    def identity(self) -> DistinguishedName:
        """The subject with proxy CN components stripped (the real user)."""
        from repro.pki.proxy import strip_proxy_cns

        return strip_proxy_cns(self.chain[0].subject)

    def valid_at(self, t: float) -> bool:
        """True iff every certificate in the chain is within its validity."""
        return all(c.valid_at(t) for c in self.chain)

    def expires_at(self) -> float:
        """Earliest not_after over the chain."""
        return min(c.not_after for c in self.chain)

    def to_pem(self, include_key: bool = True) -> str:
        """Concatenated PEM blocks: leaf cert, [key], remaining chain.

        This is exactly the DCSC P blob layout from paper Section V:
        "1. An X.509 certificate in PEM format / 2. A private key in PEM
        format / 3. Additional X.509 certificates in PEM format".
        """
        memo = self.__dict__.get("_pem_memo")
        if memo is None:
            memo = {}
            object.__setattr__(self, "_pem_memo", memo)
        text = memo.get(include_key)
        if text is not None:
            return text
        parts = [self.chain[0].to_pem()]
        if include_key:
            parts.append(keypair_to_pem(self.key))
        parts.extend(c.to_pem() for c in self.chain[1:])
        text = memo[include_key] = "".join(parts)
        if include_key:
            if len(_ROUNDTRIP) >= _ROUNDTRIP_MAX:
                _ROUNDTRIP.pop(next(iter(_ROUNDTRIP)))
            _ROUNDTRIP[text] = self
        return text

    @staticmethod
    def from_pem(text: str) -> "Credential":
        """Parse a concatenation of PEM blocks into a credential.

        The first CERTIFICATE block is the leaf; exactly one RSA PRIVATE
        KEY block must be present; any further CERTIFICATE blocks are
        chain certificates, kept in order of appearance.
        """
        from repro.pki.certificate import (
            PEM_CERT_LABEL,
            PEM_KEY_LABEL,
            Certificate as Cert,
            keypair_from_der,
        )

        hit = _ROUNDTRIP.get(text)
        if hit is not None:
            return hit

        certs: list[Certificate] = []
        keys: list[KeyPair] = []
        for label, der in pem_decode_all(text):
            if label == PEM_CERT_LABEL:
                certs.append(Cert.from_der(der))
            elif label == PEM_KEY_LABEL:
                keys.append(keypair_from_der(der))
            else:
                raise CertificateError(f"unexpected PEM block {label!r} in credential")
        if not certs:
            raise CertificateError("credential PEM contains no certificate")
        if len(keys) != 1:
            raise CertificateError(
                f"credential PEM must contain exactly one private key, found {len(keys)}"
            )
        parsed = Credential(chain=tuple(certs), key=keys[0])
        if len(_ROUNDTRIP) >= _ROUNDTRIP_MAX:
            _ROUNDTRIP.pop(next(iter(_ROUNDTRIP)))
        _ROUNDTRIP[text] = parsed
        return parsed
