"""Certificates: the to-be-signed content, signatures, and PEM framing.

A certificate binds a subject DN to a public key under an issuer's
signature.  The to-be-signed (TBS) content is canonical JSON, so the
same logical certificate always produces the same signed bytes and any
tampering (changed subject, swapped key, shifted validity) invalidates
the signature — which the property tests verify exhaustively.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace

from repro.errors import CertificateError
from repro.pki.dn import DistinguishedName
from repro.pki.rsa import KeyPair, PublicKey, verify
from repro.util.encoding import canonical_json, from_canonical_json, pem_decode, pem_encode

PEM_CERT_LABEL = "CERTIFICATE"
PEM_KEY_LABEL = "RSA PRIVATE KEY"

#: DER bytes -> parsed certificate.  Certificates are immutable, so the
#: same wire bytes always denote the same object; GSI presents the same
#: server chain on every AUTH, and re-parsing it per session dominated
#: fleet login cost before this memo.
_DER_MEMO: dict[bytes, "Certificate"] = {}
_DER_MEMO_MAX = 2048


@dataclass(frozen=True)
class Certificate:
    """An X.509-style certificate.

    ``extensions`` carries free-form metadata; the keys this library uses:

    * ``"proxy"`` — RFC-3820-style proxy certificate marker;
    * ``"issued_by_service"`` — set by MyProxy Online CA so the GCMU
      authorization callout can recognize locally-issued certificates;
    * ``"local_username"`` — convenience duplicate of the DN-embedded
      username (the callout parses the DN, this is for diagnostics).
    """

    subject: DistinguishedName
    issuer: DistinguishedName
    serial: int
    not_before: float
    not_after: float
    public_key: PublicKey
    is_ca: bool = False
    extensions: dict = field(default_factory=dict)
    signature: int = 0

    def __post_init__(self) -> None:
        if self.not_after <= self.not_before:
            raise CertificateError(
                f"certificate validity window is empty: "
                f"[{self.not_before}, {self.not_after}]"
            )

    # -- derived -------------------------------------------------------------

    @property
    def is_self_signed(self) -> bool:
        """Issuer DN equals subject DN (root CAs and DCSC self-signed contexts)."""
        return self.subject == self.issuer

    @property
    def is_proxy(self) -> bool:
        """True for RFC-3820-style proxy certificates."""
        return bool(self.extensions.get("proxy"))

    def valid_at(self, t: float) -> bool:
        """True iff ``t`` lies in [not_before, not_after]."""
        return self.not_before <= t <= self.not_after

    def lifetime(self) -> float:
        """Validity window length in seconds."""
        return self.not_after - self.not_before

    # -- signing ---------------------------------------------------------------

    def tbs_dict(self) -> dict:
        """The to-be-signed content, as a plain dict."""
        return {
            "subject": self.subject.to_dict(),
            "issuer": self.issuer.to_dict(),
            "serial": self.serial,
            "not_before": self.not_before,
            "not_after": self.not_after,
            "public_key": self.public_key.to_dict(),
            "is_ca": self.is_ca,
            "extensions": {k: self.extensions[k] for k in sorted(self.extensions)},
        }

    def tbs_bytes(self) -> bytes:
        """Canonical signed bytes.

        Memoized per instance: certificates are immutable once built
        (``extensions`` is never mutated after construction), and fleet
        runs re-serialize the same certificates on every login, so the
        canonical-JSON encoding is computed once.
        """
        cached = self.__dict__.get("_tbs_memo")
        if cached is None:
            cached = canonical_json(self.tbs_dict())
            object.__setattr__(self, "_tbs_memo", cached)
        return cached

    def signed_by(self, issuer_key: KeyPair) -> "Certificate":
        """A copy of this certificate carrying a signature by ``issuer_key``."""
        from repro.pki.rsa import sign

        return replace(self, signature=sign(issuer_key, self.tbs_bytes()))

    def verify_signature(self, issuer_public: PublicKey) -> bool:
        """True iff the signature verifies under ``issuer_public``.

        Memoized per (n, e): chain walks re-verify the same signatures
        on every connect, and both inputs are immutable.
        """
        memo = self.__dict__.get("_verify_memo")
        if memo is None:
            memo = {}
            object.__setattr__(self, "_verify_memo", memo)
        key = (issuer_public.n, issuer_public.e)
        hit = memo.get(key)
        if hit is None:
            hit = memo[key] = verify(issuer_public, self.tbs_bytes(), self.signature)
        return hit

    def fingerprint(self) -> str:
        """Stable identifier over TBS + signature."""
        cached = self.__dict__.get("_fp_memo")
        if cached is None:
            h = hashlib.sha256(self.tbs_bytes() + f":{self.signature:x}".encode())
            cached = h.hexdigest()[:24]
            object.__setattr__(self, "_fp_memo", cached)
        return cached

    # -- serialization ------------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-dict form (serialization)."""
        d = self.tbs_dict()
        d["signature"] = f"{self.signature:x}"
        return d

    @staticmethod
    def from_dict(d: dict) -> "Certificate":
        """Rebuild from :meth:`to_dict` output."""
        try:
            return Certificate(
                subject=DistinguishedName.from_dict(d["subject"]),
                issuer=DistinguishedName.from_dict(d["issuer"]),
                serial=int(d["serial"]),
                not_before=float(d["not_before"]),
                not_after=float(d["not_after"]),
                public_key=PublicKey.from_dict(d["public_key"]),
                is_ca=bool(d["is_ca"]),
                extensions=dict(d.get("extensions", {})),
                signature=int(d.get("signature", "0"), 16),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CertificateError(f"malformed certificate dict: {exc}") from exc

    def to_pem(self) -> str:
        """PEM-framed certificate (canonical JSON inside the base64 body)."""
        cached = self.__dict__.get("_pem_memo")
        if cached is None:
            cached = pem_encode(PEM_CERT_LABEL, canonical_json(self.to_dict()))
            object.__setattr__(self, "_pem_memo", cached)
        return cached

    @staticmethod
    def from_pem(text: str) -> "Certificate":
        """Parse from a PEM block."""
        _, der = pem_decode(text, expected_label=PEM_CERT_LABEL)
        return Certificate.from_dict(from_canonical_json(der))

    @staticmethod
    def from_der(der: bytes) -> "Certificate":
        """Parse the base64-decoded body of a PEM CERTIFICATE block.

        Memoized by the DER bytes (immutable in, immutable out).
        """
        hit = _DER_MEMO.get(der)
        if hit is None:
            hit = Certificate.from_dict(from_canonical_json(der))
            if len(_DER_MEMO) >= _DER_MEMO_MAX:
                _DER_MEMO.pop(next(iter(_DER_MEMO)))
            _DER_MEMO[der] = hit
        return hit

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        kind = "CA" if self.is_ca else ("proxy" if self.is_proxy else "EEC")
        return f"<{kind} cert subject={self.subject} issuer={self.issuer} serial={self.serial}>"


def keypair_to_pem(key: KeyPair) -> str:
    """PEM-frame a private key (used in the DCSC P blob).

    Memoized on the key instance: delegation re-serializes the same
    (memoized) session keys on every login.
    """
    cached = key.__dict__.get("_pem_memo")
    if cached is None:
        cached = pem_encode(PEM_KEY_LABEL, canonical_json(key.to_dict()))
        object.__setattr__(key, "_pem_memo", cached)
    return cached


def keypair_from_pem(text: str) -> KeyPair:
    """Parse a PEM RSA PRIVATE KEY block."""
    _, der = pem_decode(text, expected_label=PEM_KEY_LABEL)
    return keypair_from_der(der)


def keypair_from_der(der: bytes) -> KeyPair:
    """Parse the base64-decoded body of a PEM key block."""
    try:
        return KeyPair.from_dict(from_canonical_json(der))
    except (KeyError, TypeError, ValueError) as exc:
        raise CertificateError(f"malformed private key: {exc}") from exc
