"""X.509 distinguished names, in the Globus slash notation.

GSI identities are written ``/O=Grid/OU=GCMU/CN=alice``; GCMU's central
trick (paper Section IV.C) is to *embed the local username in the DN* of
the short-lived certificate so that no gridmap file is needed.  The DN
type here supports parsing, formatting, appending CN components (how
proxy certificates extend their parent subject), and structured access
to the final CN (how the GCMU authorization callout recovers the
username).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CertificateError

_ESCAPE = "\\"


def _escape(value: str) -> str:
    return value.replace(_ESCAPE, _ESCAPE + _ESCAPE).replace("/", _ESCAPE + "/")


def _unescape(value: str) -> str:
    out: list[str] = []
    i = 0
    while i < len(value):
        c = value[i]
        if c == _ESCAPE and i + 1 < len(value):
            out.append(value[i + 1])
            i += 2
        else:
            out.append(c)
            i += 1
    return "".join(out)


@dataclass(frozen=True)
class DistinguishedName:
    """An ordered sequence of (attribute, value) RDNs."""

    rdns: tuple[tuple[str, str], ...]

    def __post_init__(self) -> None:
        if not self.rdns:
            raise CertificateError("a DN must have at least one RDN")
        for attr, value in self.rdns:
            if not attr or not value:
                raise CertificateError(f"empty RDN component in {self.rdns!r}")

    # -- constructors ------------------------------------------------------

    @staticmethod
    def make(*pairs: tuple[str, str]) -> "DistinguishedName":
        """Build from (attr, value) pairs: ``DN.make(("O","Grid"),("CN","x"))``."""
        return DistinguishedName(rdns=tuple(pairs))

    @staticmethod
    def parse(text: str) -> "DistinguishedName":
        """Parse slash notation: ``/O=Grid/OU=site/CN=alice``.

        Values may contain escaped slashes (``\\/``).
        """
        if not text.startswith("/"):
            raise CertificateError(f"DN must start with '/': {text!r}")
        # split on unescaped slashes
        parts: list[str] = []
        current: list[str] = []
        i = 1
        while i < len(text):
            c = text[i]
            if c == _ESCAPE and i + 1 < len(text):
                current.append(c)
                current.append(text[i + 1])
                i += 2
                continue
            if c == "/":
                parts.append("".join(current))
                current = []
            else:
                current.append(c)
            i += 1
        parts.append("".join(current))
        rdns: list[tuple[str, str]] = []
        for part in parts:
            if "=" not in part:
                raise CertificateError(f"malformed RDN {part!r} in {text!r}")
            attr, _, value = part.partition("=")
            rdns.append((attr.strip(), _unescape(value)))
        return DistinguishedName(rdns=tuple(rdns))

    # -- accessors -----------------------------------------------------------

    def __str__(self) -> str:
        # DNs are immutable and stringified on hot paths (DCAU cache
        # keys, event fields); render once per instance.
        cached = self.__dict__.get("_str_memo")
        if cached is None:
            cached = "".join(f"/{attr}={_escape(value)}" for attr, value in self.rdns)
            object.__setattr__(self, "_str_memo", cached)
        return cached

    def get(self, attr: str) -> list[str]:
        """All values of the given attribute, in order."""
        return [v for a, v in self.rdns if a == attr]

    @property
    def common_name(self) -> str | None:
        """The *last* CN component (None if there is no CN)."""
        cns = self.get("CN")
        return cns[-1] if cns else None

    def with_cn(self, value: str) -> "DistinguishedName":
        """A new DN with an extra CN appended (proxy-certificate style)."""
        return DistinguishedName(rdns=self.rdns + (("CN", value),))

    def parent(self) -> "DistinguishedName":
        """A new DN with the final RDN removed."""
        if len(self.rdns) <= 1:
            raise CertificateError("cannot take parent of a single-RDN DN")
        return DistinguishedName(rdns=self.rdns[:-1])

    def is_prefix_of(self, other: "DistinguishedName") -> bool:
        """True iff ``other`` extends this DN by zero or more RDNs."""
        return other.rdns[: len(self.rdns)] == self.rdns

    def to_dict(self) -> list[list[str]]:
        """Plain-dict form (serialization)."""
        return [[a, v] for a, v in self.rdns]

    @staticmethod
    def from_dict(data: list[list[str]]) -> "DistinguishedName":
        """Rebuild from :meth:`to_dict` output."""
        return DistinguishedName(rdns=tuple((a, v) for a, v in data))
