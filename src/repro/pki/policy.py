"""CA signing policies.

Globus deployments constrain each trusted CA to a namespace of subject
DNs via ``*.signing_policy`` files; a CA that signs outside its namespace
is not honoured for those subjects.  Paper Section V spells out the DCSC
interaction: "Servers do not require signing policy files for any CA
certificates in (3) [the blob].  If signing policies do exist ... the
server will still use and enforce them."

Patterns use shell globbing over the string form of the DN, e.g.
``/O=GCMU/OU=alcf/*``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase

from repro.pki.dn import DistinguishedName


@dataclass(frozen=True)
class SigningPolicy:
    """Namespace constraint for one CA."""

    ca_subject: DistinguishedName
    allowed_patterns: tuple[str, ...]

    @staticmethod
    def make(ca_subject: DistinguishedName, *patterns: str) -> "SigningPolicy":
        """Build from (attribute, value) patterns."""
        return SigningPolicy(ca_subject=ca_subject, allowed_patterns=tuple(patterns))

    @staticmethod
    def namespace(ca_subject: DistinguishedName, prefix: DistinguishedName) -> "SigningPolicy":
        """Allow exactly the subtree under ``prefix`` (plus ``prefix`` itself)."""
        return SigningPolicy(
            ca_subject=ca_subject,
            allowed_patterns=(str(prefix), str(prefix) + "/*"),
        )

    def permits(self, subject: DistinguishedName) -> bool:
        """True iff the CA is allowed to certify ``subject``."""
        text = str(subject)
        return any(fnmatchcase(text, pat) for pat in self.allowed_patterns)

    def format_file(self) -> str:
        """Render in the spirit of a Globus ``.signing_policy`` file."""
        conds = "'" + "' '".join(self.allowed_patterns) + "'"
        return (
            f"access_id_CA  X509  '{self.ca_subject}'\n"
            f"pos_rights    globus CA:sign\n"
            f"cond_subjects globus \"{conds}\"\n"
        )

    @staticmethod
    def parse_file(text: str) -> "SigningPolicy":
        """Parse the output of :meth:`format_file`."""
        ca_subject: DistinguishedName | None = None
        patterns: tuple[str, ...] = ()
        for line in text.splitlines():
            line = line.strip()
            if line.startswith("access_id_CA"):
                # access_id_CA  X509  '<dn>'
                dn_text = line.split("'", 2)[1]
                ca_subject = DistinguishedName.parse(dn_text)
            elif line.startswith("cond_subjects"):
                quoted = line.split('"', 2)[1]
                patterns = tuple(p for p in quoted.replace("'", " ").split() if p)
        if ca_subject is None or not patterns:
            from repro.errors import CertificateError

            raise CertificateError("malformed signing policy file")
        return SigningPolicy(ca_subject=ca_subject, allowed_patterns=patterns)
