"""RFC-3820-style proxy certificates.

A proxy certificate lets a short-lived key act as the user without the
user's long-term key leaving their machine, and — crucially for Globus
Online — lets the user *delegate*: hand a further proxy to a service so
it can act on their behalf (restarting transfers, re-authenticating to
endpoints).  GridFTP-Lite's SSH authentication cannot do this, which is
limitation 2 in paper Section III.B.

Rules implemented (following RFC 3820):

* the proxy's subject is the parent's subject plus one ``CN=<serial>`` RDN;
* the proxy's issuer is the parent's subject, signed by the parent's key;
* a proxy may sign further proxies (delegation chains);
* the *identity* of any chain is the subject with trailing proxy CNs
  stripped.
"""

from __future__ import annotations

import random

from repro.errors import CertificateError
from repro.pki.certificate import Certificate
from repro.pki.credential import Credential
from repro.pki.dn import DistinguishedName
from repro.pki.rsa import generate_keypair
from repro.sim.clock import Clock
from repro.util.units import HOUR

#: default proxy lifetime (grid-proxy-init's classic 12 hours)
DEFAULT_PROXY_LIFETIME = 12 * HOUR


def create_proxy(
    parent: Credential,
    clock: Clock,
    rng: random.Random | None = None,
    lifetime: float = DEFAULT_PROXY_LIFETIME,
    key_bits: int = 512,
) -> Credential:
    """Create a proxy credential signed by ``parent``.

    The returned chain is [proxy, *parent chain].  The proxy's lifetime is
    clipped to the parent's expiry: a proxy cannot outlive its signer.
    """
    rng = rng or random.Random()
    now = clock.now
    if not parent.valid_at(now):
        raise CertificateError("cannot create a proxy from an expired credential")
    # Delegation memo: GSI re-derives its delegation rng from the world
    # seed on every login, so the same (parent, rng state) pair requests
    # an identical proxy — same key, same serial, same subject — with
    # only the validity window anchored at a later ``now``.  Replaying
    # the cached proxy is indistinguishable as long as it is still well
    # inside its window (proxies are presented within milliseconds of
    # delegation and sessions live for virtual seconds); past the
    # halfway point we mint a fresh one, so nothing downstream can ever
    # see an expired credential where it previously saw a valid one.
    memo = parent.__dict__.get("_proxy_memo")
    if memo is None:
        memo = {}
        object.__setattr__(parent, "_proxy_memo", memo)
    memo_key = (lifetime, key_bits, rng.getstate())
    hit = memo.get(memo_key)
    if hit is not None:
        proxy, post_state, fresh_until = hit
        if proxy.chain[0].not_before <= now <= fresh_until:
            rng.setstate(post_state)
            return proxy
    key = generate_keypair(key_bits, rng)
    serial = rng.randrange(1, 1 << 31)
    not_after = min(now + lifetime, parent.expires_at())
    proxy_cert = Certificate(
        subject=parent.subject.with_cn(str(serial)),
        issuer=parent.subject,
        serial=serial,
        not_before=now,
        not_after=not_after,
        public_key=key.public,
        is_ca=False,
        extensions={"proxy": True},
    ).signed_by(parent.key)
    proxy = Credential(chain=(proxy_cert, *parent.chain), key=key)
    memo[memo_key] = (proxy, rng.getstate(), now + (not_after - now) / 2)
    return proxy


def is_proxy_subject(subject: DistinguishedName, parent_subject: DistinguishedName) -> bool:
    """True iff ``subject`` is ``parent_subject`` plus exactly one CN RDN."""
    if len(subject.rdns) != len(parent_subject.rdns) + 1:
        return False
    if not parent_subject.is_prefix_of(subject):
        return False
    attr, _ = subject.rdns[-1]
    return attr == "CN"


def strip_proxy_cns(subject: DistinguishedName) -> DistinguishedName:
    """Remove trailing numeric proxy CN components, yielding the identity.

    Proxy CNs are the serial numbers appended by :func:`create_proxy`; the
    heuristic (trailing all-digit CNs) matches what Globus' own
    ``X509_NAME``-walking code does with ``CN=proxy``/``CN=limited proxy``
    markers in spirit.
    """
    rdns = list(subject.rdns)
    while len(rdns) > 1:
        attr, value = rdns[-1]
        if attr == "CN" and value.isdigit():
            rdns.pop()
        else:
            break
    return DistinguishedName(rdns=tuple(rdns))


def proxy_depth(chain: tuple[Certificate, ...]) -> int:
    """Number of proxy certificates at the head of the chain."""
    depth = 0
    for cert in chain:
        if cert.is_proxy:
            depth += 1
        else:
            break
    return depth
