"""Certificate authorities.

A :class:`CertificateAuthority` owns a key pair and a self-signed root
certificate, and issues end-entity (or subordinate CA) certificates.
Well-known public CAs, per-site MyProxy Online CAs, and ad-hoc DCSC
self-signed contexts are all built from this one class.

Issuance reads the virtual clock for validity windows, so short-lived
MyProxy certificates genuinely expire as simulated time advances.
"""

from __future__ import annotations

import itertools
import random
from collections import deque

from repro.errors import SigningPolicyError
from repro.pki.certificate import Certificate
from repro.pki.credential import Credential
from repro.pki.dn import DistinguishedName
from repro.pki.policy import SigningPolicy
from repro.pki.rsa import PublicKey, generate_keypair
from repro.sim.clock import Clock
from repro.util.units import DAY, HOUR


class CertificateAuthority:
    """A CA: root certificate + key + serial counter + optional self-policy.

    ``enforce_own_policy`` makes the CA refuse to sign subjects outside
    its own namespace — real CAs behave this way; tests disable it to
    manufacture rogue certificates for negative testing.
    """

    #: default root certificate lifetime
    ROOT_LIFETIME = 3650 * DAY
    #: default issued-certificate lifetime (a classic 1-year user cert)
    DEFAULT_LIFETIME = 365 * DAY

    def __init__(
        self,
        subject: DistinguishedName,
        clock: Clock,
        rng: random.Random | None = None,
        key_bits: int = 512,
        policy: SigningPolicy | None = None,
        enforce_own_policy: bool = True,
    ) -> None:
        self.clock = clock
        self.rng = rng or random.Random()
        self.key = generate_keypair(key_bits, self.rng)
        self.policy = policy
        self.enforce_own_policy = enforce_own_policy
        self._serials = itertools.count(self.rng.randrange(1, 1 << 24) << 16)
        self._key_pool: dict[int, deque] = {}
        root = Certificate(
            subject=subject,
            issuer=subject,
            serial=next(self._serials),
            not_before=clock.now,
            not_after=clock.now + self.ROOT_LIFETIME,
            public_key=self.key.public,
            is_ca=True,
        )
        self.certificate = root.signed_by(self.key)

    @property
    def subject(self) -> DistinguishedName:
        """The subject distinguished name."""
        return self.certificate.subject

    def issue(
        self,
        subject: DistinguishedName,
        public_key: PublicKey,
        lifetime: float = DEFAULT_LIFETIME,
        is_ca: bool = False,
        extensions: dict | None = None,
        not_before: float | None = None,
    ) -> Certificate:
        """Sign a certificate for ``subject`` over ``public_key``."""
        if (
            self.enforce_own_policy
            and self.policy is not None
            and not self.policy.permits(subject)
        ):
            raise SigningPolicyError(
                f"CA {self.subject} refuses to sign {subject} (outside policy namespace)"
            )
        start = self.clock.now if not_before is None else not_before
        cert = Certificate(
            subject=subject,
            issuer=self.subject,
            serial=next(self._serials),
            not_before=start,
            not_after=start + lifetime,
            public_key=public_key,
            is_ca=is_ca,
            extensions=dict(extensions or {}),
        )
        return cert.signed_by(self.key)

    def pregenerate(self, count: int, key_bits: int = 512) -> None:
        """Fill the key pool ahead of time (MyProxy key pregeneration).

        Real MyProxy servers pregenerate RSA key pairs in idle time so a
        logon never waits on prime search.  The pool draws from the same
        rng stream, in the same order, that :meth:`issue_credential`
        would — the i-th issued credential carries the identical key
        whether or not it was pregenerated; only the wall-clock moment of
        the generation work moves.  After construction the CA's rng feeds
        key generation exclusively (serials come from a counter), so an
        over-full pool never perturbs any other random stream.
        """
        pool = self._key_pool.setdefault(key_bits, deque())
        for _ in range(count):
            pool.append(generate_keypair(key_bits, self.rng))

    def issue_credential(
        self,
        subject: DistinguishedName,
        lifetime: float = DEFAULT_LIFETIME,
        key_bits: int = 512,
        extensions: dict | None = None,
    ) -> Credential:
        """Generate a key pair and issue a certificate for it, bundled.

        This is what MyProxy Online CA does on every logon (with a short
        lifetime) and what site admins did manually in the conventional
        workflow (with a long one).
        """
        pool = self._key_pool.get(key_bits)
        key = pool.popleft() if pool else generate_keypair(key_bits, self.rng)
        cert = self.issue(subject, key.public, lifetime=lifetime, extensions=extensions)
        return Credential(chain=(cert, self.certificate), key=key)


def self_signed_credential(
    subject: DistinguishedName,
    clock: Clock,
    rng: random.Random | None = None,
    lifetime: float = 12 * HOUR,
    key_bits: int = 512,
    extensions: dict | None = None,
) -> Credential:
    """A random self-signed credential.

    Paper Section V: "If both servers support DCSC, clients that desire
    higher security may specify a random, self-signed certificate as the
    DCAU context."  This builds that context.
    """
    rng = rng or random.Random()
    key = generate_keypair(key_bits, rng)
    cert = Certificate(
        subject=subject,
        issuer=subject,
        serial=rng.randrange(1, 1 << 40),
        not_before=clock.now,
        not_after=clock.now + lifetime,
        public_key=key.public,
        is_ca=False,
        extensions=dict(extensions or {}),
    ).signed_by(key)
    return Credential(chain=(cert,), key=key)
