"""Public-key infrastructure: RSA, X.509-style certificates, CAs, proxies.

This package replaces OpenSSL/X.509 for the reproduction.  It implements
the *logical* PKI semantics the paper depends on — issuer/subject chains,
trust anchors, validity windows, signing policies, RFC-3820-style proxy
certificates — over a small but real RSA implementation (Miller-Rabin
keygen, hash-and-sign).  Certificates serialize to PEM-style blocks so
the DCSC blob format of Section V can be implemented faithfully.
"""

from repro.pki.rsa import KeyPair, PublicKey, generate_keypair, sign, verify
from repro.pki.dn import DistinguishedName
from repro.pki.certificate import Certificate
from repro.pki.credential import Credential
from repro.pki.policy import SigningPolicy
from repro.pki.ca import CertificateAuthority
from repro.pki.proxy import create_proxy, is_proxy_subject, strip_proxy_cns
from repro.pki.validation import TrustStore, ValidationResult, validate_chain

__all__ = [
    "KeyPair",
    "PublicKey",
    "generate_keypair",
    "sign",
    "verify",
    "DistinguishedName",
    "Certificate",
    "Credential",
    "SigningPolicy",
    "CertificateAuthority",
    "create_proxy",
    "is_proxy_subject",
    "strip_proxy_cns",
    "TrustStore",
    "ValidationResult",
    "validate_chain",
]
