"""Circuit breaking for repeatedly failing endpoints.

A transfer fabric that keeps re-dialing a dead endpoint wastes retry
budget and hammers whatever is left of the site.  The breaker is the
standard three-state machine, keyed by an arbitrary endpoint string and
clocked by the world's virtual clock:

* **closed** — calls flow; consecutive failures are counted;
* **open** — after ``failure_threshold`` consecutive failures, calls are
  refused (:class:`~repro.errors.CircuitOpenError`) until
  ``reset_timeout_s`` has elapsed;
* **half-open** — one trial call is admitted; success closes the
  circuit, failure re-opens it for another full timeout.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.errors import CircuitOpenError


class _ClockLike(Protocol):  # pragma: no cover - typing helper
    @property
    def now(self) -> float: ...


class CircuitState(enum.Enum):
    """Where one endpoint's circuit currently stands."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass
class _Entry:
    failures: int = 0
    opened_at: float | None = None
    half_open_trial: bool = False
    stats: dict[str, int] = field(default_factory=lambda: {"opened": 0, "refused": 0})


class CircuitBreaker:
    """Per-endpoint failure accounting against a (virtual) clock."""

    def __init__(
        self,
        clock: _ClockLike,
        failure_threshold: int = 5,
        reset_timeout_s: float = 600.0,
        on_open: Callable[[str], None] | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout_s <= 0:
            raise ValueError("reset_timeout_s must be positive")
        self.clock = clock
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        #: invoked with the endpoint key each time a circuit opens; the
        #: transfer service uses it to flush pooled control channels to
        #: an endpoint the fabric has just declared unhealthy
        self.on_open = on_open
        self._entries: dict[str, _Entry] = {}

    def _entry(self, key: str) -> _Entry:
        return self._entries.setdefault(key, _Entry())

    # -- queries ---------------------------------------------------------------

    def state(self, key: str) -> CircuitState:
        """The endpoint's current state (OPEN decays to HALF_OPEN on timeout)."""
        e = self._entries.get(key)
        if e is None or e.opened_at is None:
            return CircuitState.CLOSED
        if self.clock.now - e.opened_at >= self.reset_timeout_s:
            return CircuitState.HALF_OPEN
        return CircuitState.OPEN

    def retry_after_s(self, key: str) -> float:
        """Virtual seconds until an open circuit admits a trial (0 if not open)."""
        e = self._entries.get(key)
        if e is None or e.opened_at is None:
            return 0.0
        return max(0.0, e.opened_at + self.reset_timeout_s - self.clock.now)

    def failures(self, key: str) -> int:
        """Consecutive failures recorded for the endpoint."""
        e = self._entries.get(key)
        return e.failures if e else 0

    def times_opened(self, key: str) -> int:
        """How many times the endpoint's circuit has opened."""
        e = self._entries.get(key)
        return e.stats["opened"] if e else 0

    def endpoints(self) -> list[str]:
        """Every endpoint with breaker history, sorted (for dashboards)."""
        return sorted(self._entries)

    # -- the gate -----------------------------------------------------------------

    def check(self, key: str) -> None:
        """Raise :class:`CircuitOpenError` unless a call may proceed.

        In the half-open state exactly one trial is admitted per timeout
        window; concurrent callers beyond the trial are refused.
        """
        state = self.state(key)
        if state is CircuitState.CLOSED:
            return
        e = self._entry(key)
        if state is CircuitState.HALF_OPEN and not e.half_open_trial:
            e.half_open_trial = True
            return
        e.stats["refused"] += 1
        raise CircuitOpenError(
            f"circuit for {key!r} is open after {e.failures} consecutive failures; "
            f"retry in {self.retry_after_s(key):.1f}s",
            endpoint=key,
            retry_after_s=self.retry_after_s(key),
        )

    # -- outcome reporting ---------------------------------------------------------

    def record_success(self, key: str) -> None:
        """A call succeeded: close the circuit and forget the failures."""
        e = self._entry(key)
        e.failures = 0
        e.opened_at = None
        e.half_open_trial = False

    def record_failure(self, key: str) -> CircuitState:
        """A call failed: count it; open the circuit at the threshold.

        A failure during the half-open trial re-opens immediately.
        Returns the resulting state.
        """
        e = self._entry(key)
        e.failures += 1
        was_half_open = e.opened_at is not None and e.half_open_trial
        if e.failures >= self.failure_threshold or was_half_open:
            e.opened_at = self.clock.now
            e.half_open_trial = False
            e.stats["opened"] += 1
            if self.on_open is not None:
                self.on_open(key)
            return CircuitState.OPEN
        return CircuitState.CLOSED

    def reset(self, key: str | None = None) -> None:
        """Forget one endpoint's history (or everything)."""
        if key is None:
            self._entries.clear()
        else:
            self._entries.pop(key, None)
