"""Retry policies: exponential backoff with deterministic jitter.

A :class:`RetryPolicy` is a frozen value object; it holds no RNG.  The
caller (normally :class:`~repro.recovery.engine.RecoveryEngine`) passes
a seeded ``random.Random`` — derived from the world seed via
:class:`repro.sim.random.RngFactory` — so every backoff schedule is
replayable from the seed.

Two invariants the property suite pins down:

* the *base* backoff sequence is monotone non-decreasing and saturates
  at ``max_backoff_s``;
* jitter only ever *adds* to the base (full additive jitter in
  ``[0, jitter * base]``), so with ``multiplier >= 1 + jitter`` the
  jittered sequence stays monotone until the cap.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff/budget knobs for one recovery loop.

    ``attempt_timeout_s`` is a per-attempt deadline: an attempt whose
    virtual-time cost exceeds it is counted (and, when it failed, not
    granted further backoff headroom).  ``max_elapsed_s`` bounds the
    whole loop: no retry is scheduled that would start beyond the
    budget.
    """

    max_attempts: int = 5
    initial_backoff_s: float = 1.0
    multiplier: float = 2.0
    max_backoff_s: float = 120.0
    jitter: float = 0.1
    attempt_timeout_s: float | None = None
    max_elapsed_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.initial_backoff_s < 0:
            raise ValueError("initial_backoff_s cannot be negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1 (backoff may not shrink)")
        if self.max_backoff_s < self.initial_backoff_s:
            raise ValueError("max_backoff_s must be >= initial_backoff_s")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.attempt_timeout_s is not None and self.attempt_timeout_s <= 0:
            raise ValueError("attempt_timeout_s must be positive")
        if self.max_elapsed_s is not None and self.max_elapsed_s <= 0:
            raise ValueError("max_elapsed_s must be positive")

    def with_(self, **kwargs) -> "RetryPolicy":
        """A modified copy (convenience for per-call overrides)."""
        return replace(self, **kwargs)

    # -- the schedule ----------------------------------------------------------

    def base_backoff_s(self, attempt: int) -> float:
        """Jitter-free delay after failed attempt ``attempt`` (1-based).

        Monotone non-decreasing in ``attempt`` and capped at
        ``max_backoff_s``.
        """
        if attempt < 1:
            raise ValueError("attempt numbers are 1-based")
        return min(self.max_backoff_s,
                   self.initial_backoff_s * self.multiplier ** (attempt - 1))

    def backoff_s(self, attempt: int, rng: random.Random | None = None) -> float:
        """Delay after failed attempt ``attempt``, with deterministic jitter.

        Jitter is additive in ``[0, jitter * base]``, drawn from ``rng``
        in call order — the same seeded stream replays the same
        schedule.
        """
        base = self.base_backoff_s(attempt)
        if rng is None or self.jitter <= 0.0 or base <= 0.0:
            return base
        return base * (1.0 + self.jitter * rng.random())

    def schedule(self, rng: random.Random | None = None) -> list[float]:
        """The full delay sequence: one entry per possible retry."""
        return [self.backoff_s(n, rng) for n in range(1, self.max_attempts)]
