"""Recovery policies: retry/backoff, circuit breaking, checkpoint restart.

The paper's reliability story (Sections I and VI) is restart markers
plus "restart the transfer from the last checkpoint".  This package is
the production shape of that story:

* :class:`~repro.recovery.policy.RetryPolicy` — exponential backoff with
  deterministic jitter, per-attempt deadlines, and a max-elapsed budget;
* :class:`~repro.recovery.breaker.CircuitBreaker` — stop hammering an
  endpoint that keeps failing, admit a trial once it may have healed;
* :class:`~repro.recovery.engine.RecoveryEngine` — the loop that drives
  an operation under a policy, accumulates receiver restart markers into
  a checkpoint (surviving corrupted/truncated markers), and emits
  ``recovery_*`` counters and retry spans through the telemetry plane.

``third_party_with_restart``, the Globus Online job executor, and
MyProxy logon retries are all built on this engine; the chaos suite
under ``tests/integration/test_chaos_recovery.py`` exercises it against
the seeded :class:`~repro.sim.faults.FaultInjector`.
"""

from repro.recovery.breaker import CircuitBreaker, CircuitState
from repro.recovery.engine import Attempt, RecoveryEngine, RecoveryOutcome
from repro.recovery.policy import RetryPolicy

__all__ = [
    "Attempt",
    "CircuitBreaker",
    "CircuitState",
    "RecoveryEngine",
    "RecoveryOutcome",
    "RetryPolicy",
]
