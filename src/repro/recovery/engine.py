"""The recovery engine: checkpoint-restart under a retry policy.

``RecoveryEngine.run`` drives one *operation* (a callable receiving an
:class:`Attempt`) to success or exhaustion:

1. gate the attempt through the circuit breaker (if any);
2. wait out known outages (caller-supplied ``wait_clear``);
3. run the operation inside an attempt span;
4. on a retryable failure, absorb the receiver's restart marker into the
   accumulated checkpoint — round-tripped through the wire format and
   the world's chaos channel, so corrupted markers are *detected and
   discarded* (re-fetch more, never trust garbage) and truncated markers
   merely re-fetch a little extra;
5. back off per the policy (deterministic jitter from the world seed)
   and try again, respecting the max-elapsed budget.

Telemetry: the loop opens one span (default ``recovery.loop``) whose
children are exactly the per-attempt spans; backoff is events+counters
only, so span trees stay stable for assertions.  Counters:
``recovery_attempts_total``, ``recovery_retries_total`` (and the legacy
``retries_total``), ``recovery_faults_total``, ``recovery_backoff_seconds_total``,
``recovery_recovered_total``, ``recovery_exhausted_total``,
``recovery_marker_corruptions_total``, ``recovery_deadline_exceeded_total``
— all labelled by ``component``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import LinkDownError, ProtocolError, TransferFaultError
from repro.gridftp.restart import ByteRangeSet, format_restart_marker, parse_restart_marker
from repro.recovery.breaker import CircuitBreaker
from repro.recovery.policy import RetryPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.world import World


@dataclass(frozen=True)
class Attempt:
    """What an operation gets to see about the loop driving it."""

    number: int  # 1-based
    checkpoint: ByteRangeSet | None  # accumulated restart marker (None on attempt 1)


@dataclass(frozen=True)
class RecoveryOutcome:
    """A successful loop: the result plus how hard recovery had to work."""

    result: Any
    attempts: int
    checkpoint: ByteRangeSet | None
    faults_survived: int
    total_backoff_s: float


class RecoveryEngine:
    """Drives operations under a :class:`RetryPolicy` (+ optional breaker)."""

    def __init__(
        self,
        world: "World",
        policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        component: str = "recovery",
        loop_span_name: str = "recovery.loop",
        attempt_span_name: str = "recovery.attempt",
    ) -> None:
        self.world = world
        self.policy = policy or RetryPolicy()
        self.breaker = breaker
        self.component = component
        self.loop_span_name = loop_span_name
        self.attempt_span_name = attempt_span_name
        self._rng = world.rng.python(f"recovery:{component}")
        # resolve every instrument once: the loop body runs per attempt on
        # the fleet hot path, and registry lookups there are pure overhead
        self._attempts_c = self._counter(
            "recovery_attempts_total", "Operation attempts made under recovery loops")
        self._retries_new = self._counter(
            "recovery_retries_total", "Attempts that were retries of a failed attempt")
        self._retries_legacy = self._counter(
            "retries_total", "Transfer attempts retried after a failure")
        self._faults_c = self._counter(
            "recovery_faults_total", "Retryable failures absorbed by recovery loops")
        self._backoff_c = self._counter(
            "recovery_backoff_seconds_total", "Virtual seconds spent backing off")
        self._recovered_c = self._counter(
            "recovery_recovered_total", "Loops that succeeded after at least one failure")
        self._exhausted_c = self._counter(
            "recovery_exhausted_total", "Loops that gave up after exhausting their policy")
        self._deadline_c = self._counter(
            "recovery_deadline_exceeded_total", "Attempts that overran the per-attempt deadline")
        self._marker_corruptions_c = self._counter(
            "recovery_marker_corruptions_total",
            "Restart markers discarded or truncated by recovery loops")
        self._attempt_h = world.metrics.histogram(
            "recovery_attempt_seconds",
            "Virtual seconds one recovery attempt spent executing",
            labelnames=("component",))
        self._attempt_obs = self._attempt_h.labels(component=component)

    # -- counters ---------------------------------------------------------------

    def _counter(self, name: str, help: str):
        return self.world.metrics.counter(name, help, labelnames=("component",))

    # -- the loop -----------------------------------------------------------------

    def run(
        self,
        operation: Callable[[Attempt], Any],
        *,
        endpoint: str | None = None,
        wait_clear: Callable[[int], None] | None = None,
        retry_on: tuple[type[BaseException], ...] = (TransferFaultError, LinkDownError),
        on_failure: Callable[[BaseException, int, ByteRangeSet | None], None] | None = None,
        describe: str = "operation",
        span_fields: dict[str, Any] | None = None,
        wrap_exhausted: bool = False,
    ) -> RecoveryOutcome:
        """Run ``operation`` to success, or raise after exhausting the policy.

        Exceptions in ``retry_on`` are survivable; anything else
        propagates immediately (fatal).  On exhaustion the last
        :class:`TransferFaultError` is re-raised carrying the accumulated
        checkpoint, so a later loop can resume where this one gave up;
        ``wrap_exhausted=True`` wraps *any* final failure that way (for
        callers whose contract is "always raise a restartable fault").
        """
        world = self.world
        policy = self.policy
        component = self.component
        attempts_c = self._attempts_c
        retries_new = self._retries_new
        retries_legacy = self._retries_legacy
        faults_c = self._faults_c
        backoff_c = self._backoff_c
        recovered_c = self._recovered_c
        exhausted_c = self._exhausted_c
        deadline_c = self._deadline_c

        started = world.now
        checkpoint: ByteRangeSet | None = None
        faults_survived = 0
        total_backoff = 0.0
        last_exc: BaseException | None = None
        attempt_no = 0

        with world.tracer.span(
            self.loop_span_name,
            component=component,
            max_attempts=policy.max_attempts,
            **(span_fields or {}),
        ):
            while attempt_no < policy.max_attempts:
                attempt_no += 1
                if self.breaker is not None and endpoint is not None:
                    self.breaker.check(endpoint)
                if wait_clear is not None:
                    wait_clear(attempt_no)
                attempts_c.inc(component=component)
                if attempt_no > 1:
                    retries_new.inc(component=component)
                    retries_legacy.inc(component=component)
                attempt_started = world.now
                try:
                    try:
                        with world.tracer.span(
                            self.attempt_span_name, attempt=attempt_no
                        ):
                            result = operation(Attempt(attempt_no, checkpoint))
                    finally:
                        # inner finally: duration excludes the backoff the
                        # except handler sleeps through below
                        ctx = world.tracer.current
                        self._attempt_obs.observe(
                            world.now - attempt_started,
                            exemplar=ctx.trace_id if ctx is not None else None)
                except retry_on as exc:
                    last_exc = exc
                    faults_survived += 1
                    faults_c.inc(component=component)
                    if self.breaker is not None and endpoint is not None:
                        self.breaker.record_failure(endpoint)
                    if (
                        policy.attempt_timeout_s is not None
                        and world.now - attempt_started > policy.attempt_timeout_s
                    ):
                        deadline_c.inc(component=component)
                    if isinstance(exc, TransferFaultError) and exc.received is not None:
                        checkpoint = self._absorb_marker(checkpoint, exc.received)
                    if on_failure is not None:
                        on_failure(exc, attempt_no, checkpoint)
                    world.emit(
                        "recovery.fault", "attempt failed; recovery engaged",
                        component=component, attempt=attempt_no,
                        error=type(exc).__name__,
                        checkpoint_bytes=checkpoint.total_bytes() if checkpoint else 0,
                    )
                    if attempt_no >= policy.max_attempts:
                        break
                    delay = policy.backoff_s(attempt_no, self._rng)
                    if (
                        policy.max_elapsed_s is not None
                        and (world.now - started) + delay > policy.max_elapsed_s
                    ):
                        world.emit(
                            "recovery.budget_exhausted",
                            "max-elapsed budget leaves no room for another attempt",
                            component=component, attempt=attempt_no,
                            elapsed_s=world.now - started,
                            budget_s=policy.max_elapsed_s,
                        )
                        break
                    backoff_c.inc(delay, component=component)
                    total_backoff += delay
                    world.emit(
                        "recovery.backoff", "backing off before retry",
                        component=component, attempt=attempt_no, delay_s=delay,
                    )
                    world.advance(delay)
                else:
                    if self.breaker is not None and endpoint is not None:
                        self.breaker.record_success(endpoint)
                    if attempt_no > 1:
                        recovered_c.inc(component=component)
                    world.emit(
                        "recovery.succeeded", f"{describe} complete",
                        component=component, attempts=attempt_no,
                        faults_survived=faults_survived,
                        backoff_s=total_backoff,
                    )
                    return RecoveryOutcome(
                        result=result,
                        attempts=attempt_no,
                        checkpoint=checkpoint,
                        faults_survived=faults_survived,
                        total_backoff_s=total_backoff,
                    )

            exhausted_c.inc(component=component)
            world.emit(
                "recovery.exhausted", f"{describe} failed after {attempt_no} attempts",
                component=component, attempts=attempt_no,
                error=type(last_exc).__name__ if last_exc else None,
            )
            if wrap_exhausted or isinstance(last_exc, TransferFaultError):
                raise TransferFaultError(
                    f"{describe} failed after {attempt_no} attempts",
                    received=checkpoint,
                    at_time=world.now,
                ) from last_exc
            assert last_exc is not None
            raise last_exc

    # -- restart-marker hygiene --------------------------------------------------

    def _absorb_marker(
        self, checkpoint: ByteRangeSet | None, received: ByteRangeSet
    ) -> ByteRangeSet | None:
        """Union a receiver marker into the checkpoint, surviving corruption.

        The marker crosses the wire format (``format`` → chaos channel →
        ``parse``).  A garbled marker fails to parse: we *discard* it and
        keep the previous checkpoint — recovery re-fetches more than
        strictly needed, which is always safe.  A truncated marker
        parses to a subset: also safe, for the same reason.
        """
        text = format_restart_marker(received)
        filtered = self.world.chaos.filter_marker(text)
        corruptions = self._marker_corruptions_c
        try:
            marker = parse_restart_marker(filtered)
        except ProtocolError as exc:
            corruptions.inc(component=self.component)
            self.world.emit(
                "recovery.marker_corrupt", "restart marker unparseable; discarded",
                component=self.component, error=str(exc),
            )
            return checkpoint
        if filtered != text:
            corruptions.inc(component=self.component)
            self.world.emit(
                "recovery.marker_truncated", "restart marker truncated in flight",
                component=self.component,
                claimed_bytes=marker.total_bytes(),
                actual_bytes=received.total_bytes(),
            )
        return checkpoint.union(marker) if checkpoint is not None else marker
