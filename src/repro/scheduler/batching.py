"""Small-file coalescing: many tiny jobs → one pipelined batch.

The paper's pipelining result (Section V: many small files cost one
round trip each unless the control channel is pipelined) already lives
in ``run_batch_job``; what a *fleet* needs is for the scheduler to
exploit it automatically.  The coalescer buckets sub-threshold
single-file tasks by ``(user, src_endpoint, dst_endpoint)`` and folds
each bucket into one batch task whose execution moves every file over
one pipelined, data-channel-cached session pair.

A singleton bucket is flushed back as the original task — batching a
single file would only change its execution path for no win.  Bucket
and flush order are sorted, so coalescing is enumeration-order stable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.scheduler.queue import ScheduledTask

#: files at or above this many bytes never coalesce (they stream alone)
DEFAULT_BATCH_THRESHOLD_BYTES = 4 * 1024 * 1024
#: ceiling on files folded into one batch task
DEFAULT_BATCH_MAX_FILES = 64


@dataclass
class CoalescedBatch:
    """A bucket of small tasks ready to fold into one batch job."""

    user: str
    src_endpoint: str
    dst_endpoint: str
    tasks: list[ScheduledTask] = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        """Sum of the folded tasks' size hints."""
        return sum(t.size_hint for t in self.tasks)


class BatchCoalescer:
    """Accumulates small tasks and emits fold decisions at flush time.

    ``add`` either passes a task straight through (too big, or batching
    disabled) or absorbs it; ``flush`` drains every bucket, handing
    multi-task buckets to ``fold`` (which builds the batch task) and
    returning singletons unchanged.
    """

    def __init__(
        self,
        threshold_bytes: int = DEFAULT_BATCH_THRESHOLD_BYTES,
        max_files: int = DEFAULT_BATCH_MAX_FILES,
    ) -> None:
        if max_files < 2:
            raise ValueError(f"max_files must be at least 2 (got {max_files})")
        self.threshold_bytes = threshold_bytes
        self.max_files = max_files
        self._buckets: dict[tuple[str, str, str], CoalescedBatch] = {}
        # O(1) depth accounting: the admission controller reads total and
        # per-user held counts on every submit
        self._depth = 0
        self._user_depths: dict[str, int] = {}

    def __len__(self) -> int:
        return self._depth

    def depth_for(self, user: str) -> int:
        """Coalescer-held tasks for one user (across all endpoint buckets)."""
        return self._user_depths.get(user, 0)

    def add(self, task: ScheduledTask) -> ScheduledTask | None:
        """Absorb a coalescible task (returns None) or pass it through."""
        if (not task.coalesce or self.threshold_bytes <= 0
                or task.size_hint >= self.threshold_bytes):
            return task
        key = (task.user, task.src_endpoint, task.dst_endpoint)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = CoalescedBatch(*key)
        bucket.tasks.append(task)
        self._depth += 1
        self._user_depths[task.user] = self._user_depths.get(task.user, 0) + 1
        return None

    def flush(
        self, fold: Callable[[CoalescedBatch], ScheduledTask]
    ) -> list[ScheduledTask]:
        """Drain every bucket into dispatchable tasks, in sorted key order.

        Buckets larger than ``max_files`` fold into several batch tasks;
        singletons come back as the original single-file task.
        """
        out: list[ScheduledTask] = []
        for key in sorted(self._buckets):
            bucket = self._buckets[key]
            tasks = bucket.tasks
            for i in range(0, len(tasks), self.max_files):
                chunk = tasks[i:i + self.max_files]
                if len(chunk) == 1:
                    out.append(chunk[0])
                else:
                    out.append(fold(CoalescedBatch(
                        bucket.user, bucket.src_endpoint, bucket.dst_endpoint,
                        tasks=chunk,
                    )))
        self._buckets.clear()
        self._depth = 0
        self._user_depths.clear()
        return out
