"""A sharded control plane: N independent schedulers behind one router.

The single :class:`~repro.scheduler.workers.FleetScheduler` is O(log n)
per operation (DESIGN.md §12) but still one in-process fair-share heap,
one lease table, one admission controller — a ceiling on the "millions
of users" axis.  :class:`ShardedFleetScheduler` lifts it by hashing
users across N shards, each a full :class:`FleetScheduler` (its own
fair-share heap, lease-expiry heap, admission books), behind a thin
router that owns the drain loop and deterministic work-stealing.

Three design rules make the sharded plane trustworthy:

* **N=1 is bit-for-bit the single scheduler.**  The router's drain loop
  mirrors ``FleetScheduler.run_until_idle`` operation for operation;
  with one shard every claim, requeue, batch flush, and clock jump
  happens in exactly the same order, so the PR-5 fingerprint gate
  (completion order, delivered bytes, crash/requeue/batch counts,
  virtual clock) holds bitwise.  CI runs that gate standalone.

* **Shared identity, sharded state.**  Task ids come from one counter,
  completions land in one list, workers live in one merged directory —
  so exactly-once dispatch and global completion order survive
  sharding — while queues, leases, and admission books stay per-shard
  and never contend.  The admission retry-after EWMA is one shared
  :class:`~repro.scheduler.limits.ServiceTimeEwma` so every shard
  quotes consistent backoff hints.

* **Deterministic work-stealing.**  After local claims, each still-free
  live worker steals from the deepest foreign shard (ties: lowest shard
  index).  The theft runs on the *victim's* books — its queue pop, its
  lease, its admission charge, its fair-share accounting — so per-shard
  invariants hold no matter who executes; only the crash model follows
  the thief's host.  Local dispatch always wins over stealing because
  the steal phase only ever sees workers whose home shard had nothing
  runnable.

See DESIGN.md §14 for the full architecture and the
fingerprint-equivalence argument.
"""

from __future__ import annotations

import itertools
import zlib
from dataclasses import replace
from typing import TYPE_CHECKING, Any, Callable, Iterator

from repro.errors import SchedulerError
from repro.scheduler.batching import CoalescedBatch
from repro.scheduler.limits import ServiceTimeEwma
from repro.scheduler.queue import ScheduledTask
from repro.scheduler.workers import FleetScheduler, Lease, SchedulerConfig, Worker

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.world import World


def user_shard(user: str, shards: int) -> int:
    """The home shard for a user: ``crc32(user) % shards``.

    CRC32, not :func:`hash` — Python string hashing is randomized per
    process (PYTHONHASHSEED), and the shard map must be stable across
    runs, replicas, and replays for the determinism story to hold.
    """
    if shards < 1:
        raise ValueError(f"shards must be positive (got {shards})")
    return zlib.crc32(user.encode("utf-8")) % shards


class _ShardedQueueView:
    """Read-only aggregate over every shard's fair-share queue."""

    def __init__(self, owner: "ShardedFleetScheduler") -> None:
        self._owner = owner

    def __len__(self) -> int:
        return sum(len(s.queue) for s in self._owner.shards)

    def depth_for(self, user: str) -> int:
        return self._owner.shard_for(user).queue.depth_for(user)

    def lane_vtime(self, user: str) -> float:
        return self._owner.shard_for(user).queue.lane_vtime(user)

    def delivered_bytes(self) -> dict[str, int]:
        merged: dict[str, int] = {}
        for shard in self._owner.shards:
            merged.update(shard.queue.delivered_bytes())
        return dict(sorted(merged.items()))

    def lane_stats(self) -> list[dict[str, Any]]:
        rows = []
        for idx, shard in enumerate(self._owner.shards):
            for row in shard.queue.lane_stats():
                rows.append({"shard": idx, **row})
        rows.sort(key=lambda r: r["user"])
        return rows

    def tasks(self) -> Iterator[ScheduledTask]:
        for shard in self._owner.shards:
            yield from shard.queue.tasks()


class _ShardedLeaseView:
    """Read-only aggregate over every shard's lease table."""

    def __init__(self, owner: "ShardedFleetScheduler") -> None:
        self._owner = owner

    def __len__(self) -> int:
        return sum(len(s.leases) for s in self._owner.shards)

    def outstanding(self) -> list[Lease]:
        out: list[Lease] = []
        for shard in self._owner.shards:
            out.extend(shard.leases.outstanding())
        out.sort(key=lambda lease: (lease.granted_at, lease.worker_id))
        return out


class ShardedFleetScheduler:
    """N :class:`FleetScheduler` shards behind one deterministic router.

    Accepts the same ``(world, config, fold_batch)`` surface as
    :class:`FleetScheduler` plus ``shards=N``.  ``config.workers`` is
    the *fleet* worker count; worker *i* serves shard ``i % N`` (so
    hosts interleave across shards and a single host fault never takes
    a whole shard with it unless the topology says so).  Requires at
    least one worker per shard.
    """

    def __init__(
        self,
        world: "World",
        config: SchedulerConfig | None = None,
        fold_batch: Callable[[CoalescedBatch], ScheduledTask] | None = None,
        *,
        shards: int = 1,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be positive (got {shards})")
        config = config or SchedulerConfig()
        if config.workers < shards:
            raise ValueError(
                f"need at least one worker per shard "
                f"(workers={config.workers}, shards={shards})")
        self.world = world
        self.config = config
        self.fold_batch = fold_batch
        self.n_shards = shards
        # shared identity: one task-id counter, one completion list, one
        # retry-after EWMA — what keeps N schedulers one control plane
        self._task_ids = itertools.count(1)
        self._completed: list[ScheduledTask] = []
        self._service_ewma = ServiceTimeEwma()
        self._weights: dict[str, float] = {}
        self.shards: list[FleetScheduler] = []
        self._build_shards(shards)
        self.queue = _ShardedQueueView(self)
        self.leases = _ShardedLeaseView(self)
        self._steals_c = world.metrics.counter(
            "scheduler_steals_total",
            "Tasks claimed cross-shard by work-stealing",
            labelnames=("thief", "victim"))

    def _build_shards(self, shards: int) -> None:
        """Construct the per-shard schedulers and merge worker identity."""
        config = self.config
        self.n_shards = shards
        self.shards = []
        for s in range(shards):
            global_ids = [i for i in range(config.workers) if i % shards == s]
            shard_cfg = replace(config, workers=len(global_ids), worker_hosts=())
            shard = FleetScheduler(
                self.world, shard_cfg, self.fold_batch,
                shard=str(s),
                worker_prefix="w" if shards == 1 else f"s{s}w",
                service_ewma=self._service_ewma,
            )
            for worker, gid in zip(shard.workers, global_ids):
                worker.host = (config.worker_hosts[gid]
                               if gid < len(config.worker_hosts) else None)
            # retry-after hints pace on the *fleet* drain rate, so two
            # shards at equal depth quote equal backoff
            shard.admission.workers = max(1, config.workers)
            shard._task_ids = self._task_ids
            shard._completed = self._completed
            self.shards.append(shard)
        # one worker directory shared by every shard: a victim shard must
        # be able to find a foreign thief worker when its lease lapses,
        # and the heartbeat sweep must see every claimant's host
        merged: dict[str, Worker] = {}
        for shard in self.shards:
            for worker in shard.workers:
                merged[worker.worker_id] = worker
        for shard in self.shards:
            shard._workers_by_id = merged
        for user, weight in self._weights.items():
            self.shard_for(user).set_weight(user, weight)

    # -- routing -----------------------------------------------------------

    def shard_index(self, user: str) -> int:
        """The home shard index for a user."""
        return user_shard(user, self.n_shards)

    def shard_for(self, user: str) -> FleetScheduler:
        """The home shard for a user."""
        return self.shards[self.shard_index(user)]

    # -- the FleetScheduler surface ---------------------------------------

    def next_task_id(self) -> str:
        """A fresh fleet-scoped task id (one counter across all shards)."""
        return f"task-{next(self._task_ids):06d}"

    def submit(self, task: ScheduledTask) -> ScheduledTask:
        """Route a submission to its user's home shard (or raise typed
        backpressure from that shard's admission door)."""
        return self.shard_for(task.user).submit(task)

    def set_weight(self, user: str, weight: float) -> None:
        """Assign a user's fair-share weight on their home shard."""
        self._weights[user] = weight
        self.shard_for(user).set_weight(user, weight)

    @property
    def completed_tasks(self) -> tuple[ScheduledTask, ...]:
        """Tasks serviced to completion, in fleet-wide completion order."""
        return tuple(self._completed)

    @property
    def admission(self):
        """Shard 0's admission controller (every shard quotes the same
        retry-after hints through the shared EWMA)."""
        return self.shards[0].admission

    @property
    def workers(self) -> list[Worker]:
        """Every worker across every shard, in shard order."""
        return [w for shard in self.shards for w in shard.workers]

    # -- the drain loop ----------------------------------------------------

    def run_until_idle(self, max_ticks: int | None = None) -> int:
        """Drain every shard; identical to the single-scheduler loop at N=1.

        One heartbeat sweep covers the whole fleet (same label, same
        interval as the unsharded loop), every iteration flushes batches
        and requeues lapsed leases on each shard in shard order, and the
        tick claims across all shards at one virtual instant before
        executing serially.
        """
        serviced = 0
        ticks = 0
        sweep = self.world.scheduler.every(
            self.config.heartbeat_s, self._sweep_heartbeats,
            label="scheduler.heartbeat-sweep")
        try:
            while True:
                for shard in self.shards:
                    shard._flush_batches()
                    shard._requeue_lapsed()
                if all(not len(s.queue) and not len(s.leases)
                       for s in self.shards):
                    break
                ticks += 1
                if max_ticks is not None and ticks > max_ticks:
                    raise SchedulerError(
                        f"drain did not converge within {max_ticks} ticks")
                serviced += self._tick()
                for shard in self.shards:
                    shard._depth_g.set(
                        len(shard.queue) + len(shard.coalescer),
                        **shard._metric_shard)
        finally:
            sweep.cancel()
        for shard in self.shards:
            shard._fair_error_g.set(shard.queue.fair_share_error(),
                                    **shard._metric_shard)
        return serviced

    def _sweep_heartbeats(self) -> None:
        for shard in self.shards:
            shard._sweep_heartbeats()

    def _pick_victim(self, thief_index: int) -> FleetScheduler | None:
        """The deepest foreign shard with queued work; ties break to the
        lowest shard index.  Pure function of queue depths: determinism
        of the steal protocol rests here."""
        best: FleetScheduler | None = None
        best_depth = 0
        for idx, shard in enumerate(self.shards):
            if idx == thief_index:
                continue
            depth = len(shard.queue)
            if depth > best_depth:
                best, best_depth = shard, depth
        return best

    def _tick(self) -> int:
        """One fleet claim round: local claims, then steals, then execution.

        All claims (local and stolen) happen at the same virtual instant;
        execution is serial in claim order, exactly like the single
        scheduler.  A worker only reaches the steal phase when its home
        shard had nothing runnable for it, so local dispatch always wins
        the steal-vs-local tie by construction.
        """
        world = self.world
        now = world.now
        claims: list[tuple[FleetScheduler, Worker, Lease]] = []
        free_by_shard: list[list[Worker]] = []
        for shard in self.shards:
            shard_claims, free, alive = shard._claim_phase(now)
            shard._workers_alive_g.set(alive, **shard._metric_shard)
            claims.extend((shard, w, lease) for w, lease in shard_claims)
            free_by_shard.append(free)

        if self.n_shards > 1:
            for thief_index, free in enumerate(free_by_shard):
                for worker in free:
                    victim = self._pick_victim(thief_index)
                    if victim is None:
                        break  # every foreign queue is empty
                    lease = victim._claim_for(worker, now)
                    if lease is None:
                        continue  # victim's heads all inadmissible
                    self._steals_c.inc(
                        thief=str(thief_index), victim=victim.shard)
                    world.emit(
                        "scheduler.steal", "idle worker stole cross-shard",
                        task=lease.task.task_id, worker=worker.worker_id,
                        thief_shard=thief_index,
                        victim_shard=int(victim.shard),
                        shard=victim.shard,
                        trace=lease.task.trace_id or None,
                    )
                    if not lease.abandoned:
                        claims.append((victim, worker, lease))

        executed = 0
        for shard, worker, lease in claims:
            shard._execute(worker, lease)
            executed += 1
        if not claims:
            self._wait_for_next_event(now)
        return executed

    def _wait_for_next_event(self, now: float) -> None:
        """No shard can run anything: jump the one shared clock to the
        earliest wakeup across every shard."""
        future: list[float] = []
        for shard in self.shards:
            future.extend(shard._next_event_candidates(now))
        if not future:
            raise SchedulerError(
                "scheduler stalled: tasks queued but no worker can ever run them"
            )
        self.world.advance_to(min(future))

    # -- resharding --------------------------------------------------------

    def reshard(self, shards: int) -> None:
        """Rehash users across a new shard count (quiescent fleets only).

        Migration: queued tasks re-home in task-id order (the fleet-wide
        submission order), each user's lane state (weight, virtual time,
        delivered bytes) moves with them, and every new shard starts at
        the fleet's maximum global virtual time so no lane earns credit
        from the move.  Outstanding leases or unflushed batches make the
        move ambiguous, so they are refused rather than guessed at.
        """
        if shards < 1:
            raise ValueError(f"shards must be positive (got {shards})")
        if self.config.workers < shards:
            raise ValueError(
                f"need at least one worker per shard "
                f"(workers={self.config.workers}, shards={shards})")
        if any(len(s.leases) for s in self.shards):
            raise SchedulerError("reshard requires a quiescent fleet "
                                 "(outstanding leases)")
        if any(len(s.coalescer) for s in self.shards):
            raise SchedulerError("reshard requires a quiescent fleet "
                                 "(unflushed batch buckets)")
        queued = sorted(
            (t for s in self.shards for t in s.queue.tasks()),
            key=lambda t: t.task_id)
        lanes: dict[str, tuple[float, float, int]] = {}
        fleet_vtime = 0.0
        for shard in self.shards:
            fleet_vtime = max(fleet_vtime, shard.queue.global_vtime)
            for row in shard.queue.lane_stats():
                lanes[row["user"]] = (
                    row["weight"], row["vtime"], row["delivered_bytes"])
        old_n = self.n_shards
        self._build_shards(shards)
        for shard in self.shards:
            shard.queue._global_vtime = fleet_vtime
        for user, (weight, vtime, delivered) in lanes.items():
            lane = self.shard_for(user).queue._lane(user)
            lane.weight = weight
            lane.vtime = max(vtime, fleet_vtime)
            lane.delivered_bytes = delivered
        for task in queued:
            self.shard_for(task.user).queue.push(task)
        self.world.emit(
            "scheduler.resharded", "users rehashed across new shard count",
            old_shards=old_n, new_shards=shards, migrated=len(queued),
        )

    # -- introspection -----------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Fleet state for dumps: per-shard snapshots plus fleet totals."""
        return {
            "now": self.world.now,
            "n_shards": self.n_shards,
            "queued_total": len(self.queue),
            "leases_total": len(self.leases),
            "shards": [
                {"shard": idx, **shard.snapshot()}
                for idx, shard in enumerate(self.shards)
            ],
        }


def scheduler_fingerprint(world: "World", scheduler) -> dict[str, Any]:
    """The PR-5 equivalence fingerprint, scheduler-shape agnostic.

    Works for both :class:`FleetScheduler` and
    :class:`ShardedFleetScheduler`: completion order by task id,
    delivered bytes per user, every lifecycle count summed across all
    label series, and the virtual clock.  Two runs with equal
    fingerprints dispatched the same work in the same order with the
    same failures — the bit-for-bit N=1 gate compares nothing else.
    """
    metrics = world.metrics

    def total(name: str) -> float:
        metric = metrics.get(name)
        return metric.total() if metric is not None else 0.0

    completed = scheduler.completed_tasks
    return {
        "completion_order": [t.task_id for t in completed],
        "delivered_bytes": {t.task_id: t.delivered_bytes for t in completed},
        "bytes_by_user": scheduler.queue.delivered_bytes(),
        "submitted": total("scheduler_submitted_total"),
        "completed": total("scheduler_completed_total"),
        "failed": total("scheduler_task_failures_total"),
        "requeued": total("scheduler_requeued_total"),
        "expired": total("scheduler_lease_expirations_total"),
        "crashes": total("scheduler_worker_crashes_total"),
        "batches": total("scheduler_batches_coalesced_total"),
        "batched_files": total("scheduler_batched_files_total"),
        "virtual_clock": world.now,
    }
