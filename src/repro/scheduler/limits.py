"""Admission control and backpressure for the fleet scheduler.

Two doors, two failure styles:

* **Submit-time admission** — the bounded queue.  A full queue or an
  exhausted per-user quota rejects with a typed error
  (:class:`~repro.errors.QueueFullError` /
  :class:`~repro.errors.QuotaExceededError`) carrying a retry-after
  hint derived from observed service times, so clients can back off
  instead of hammering the door.

* **Claim-time backpressure** — per-endpoint concurrency caps and
  bytes-in-flight budgets.  A task whose endpoints are saturated is not
  rejected; it simply stays queued (keeping its FIFO position) until a
  slot frees up.  This is what stands between "millions of users" and
  an endpoint stampede.

Both endpoints of a transfer occupy capacity: a task counts against its
source *and* destination endpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import QueueFullError, QuotaExceededError
from repro.scheduler.queue import ScheduledTask

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.world import World

#: fallback retry-after hint before any task has completed
DEFAULT_RETRY_AFTER_S = 30.0


class ServiceTimeEwma:
    """An exponentially-weighted service-time average, shareable by reference.

    The retry-after hints the admission door hands out are paced by
    observed claim service times.  Keeping the estimator in its own
    object lets a sharded control plane hand *one* instance to every
    shard's controller, so two shards at the same depth quote the same
    hint — a client retrying against any shard sees one consistent
    backoff story, not N divergent ones.
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float | None = None

    def update(self, service_s: float) -> None:
        """Fold one observed claim service time into the average."""
        self.value = (
            service_s if self.value is None
            else 0.8 * self.value + 0.2 * service_s
        )


@dataclass(frozen=True)
class SchedulerLimits:
    """The backpressure contract, in one immutable bundle.

    ``None`` disables a knob.  ``max_queue_depth`` bounds tasks waiting
    (claimed tasks do not count); ``max_queued_per_user`` is the
    per-account quota; ``max_active_per_endpoint`` caps concurrent
    claims touching one endpoint; ``max_bytes_in_flight_per_endpoint``
    budgets the size hints of those claims.
    """

    max_queue_depth: int | None = 10_000
    max_queued_per_user: int | None = None
    max_active_per_endpoint: int | None = 8
    max_bytes_in_flight_per_endpoint: int | None = None

    def __post_init__(self) -> None:
        for name in ("max_queue_depth", "max_queued_per_user",
                     "max_active_per_endpoint", "max_bytes_in_flight_per_endpoint"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive or None (got {value})")


class AdmissionController:
    """Enforces :class:`SchedulerLimits` and keeps the in-flight books."""

    def __init__(self, world: "World", limits: SchedulerLimits | None = None,
                 workers: int = 1, *, shard: str | None = None,
                 service_ewma: ServiceTimeEwma | None = None) -> None:
        self.world = world
        self.limits = limits or SchedulerLimits()
        self.workers = max(1, workers)
        self.shard = shard
        self._active_per_endpoint: dict[str, int] = {}
        self._bytes_per_endpoint: dict[str, int] = {}
        self.service_ewma = service_ewma if service_ewma is not None else ServiceTimeEwma()
        self._rejections: dict[str, int] = {}
        # a sharded controller labels its series and events by shard; the
        # unsharded path keeps the exact label-free registrations
        self._metric_shard = {} if shard is None else {"shard": shard}
        self._event_shard = dict(self._metric_shard)
        shard_labels = () if shard is None else ("shard",)
        metrics = world.metrics
        self._rejected_c = metrics.counter(
            "scheduler_rejected_total",
            "Submissions refused by admission control",
            labelnames=shard_labels + ("reason",))
        self._inflight_tasks_g = metrics.gauge(
            "scheduler_inflight_tasks", "Claims currently holding capacity",
            labelnames=shard_labels)
        self._inflight_bytes_g = metrics.gauge(
            "scheduler_inflight_bytes",
            "Size-hint bytes of claims currently holding capacity",
            labelnames=shard_labels)

    # -- submit-time admission -------------------------------------------

    def admit(self, task: ScheduledTask, queue_depth: int, user_depth: int) -> None:
        """Admit a submission or raise a typed rejection.

        ``queue_depth``/``user_depth`` are the *current* queued counts
        (the task being admitted is not yet among them).
        """
        lim = self.limits
        if lim.max_queue_depth is not None and queue_depth >= lim.max_queue_depth:
            hint = self.retry_after_hint(queue_depth)
            self._reject("queue_full", task, hint)
            raise QueueFullError(
                f"task queue is full ({queue_depth}/{lim.max_queue_depth}); "
                f"retry in ~{hint:.0f}s",
                retry_after_s=hint,
            )
        if lim.max_queued_per_user is not None and user_depth >= lim.max_queued_per_user:
            hint = self.retry_after_hint(user_depth)
            self._reject("user_quota", task, hint)
            raise QuotaExceededError(
                f"user {task.user!r} already has {user_depth} tasks queued "
                f"(quota {lim.max_queued_per_user}); retry in ~{hint:.0f}s",
                user=task.user,
                retry_after_s=hint,
            )

    def _reject(self, reason: str, task: ScheduledTask, retry_after_s: float) -> None:
        self._rejected_c.inc(reason=reason, **self._metric_shard)
        self._rejections[reason] = self._rejections.get(reason, 0) + 1
        self.world.emit(
            "scheduler.rejected", "submission refused by admission control",
            reason=reason, user=task.user, task=task.task_id or None,
            retry_after_s=round(retry_after_s, 3), **self._event_shard,
        )

    def retry_after_hint(self, depth: int) -> float:
        """Estimated virtual seconds until a resubmission can be admitted.

        Depth over the worker pool, paced by the observed service-time
        EWMA; a configured default before any completion has been seen.
        The EWMA may be shared fleet-wide (see :class:`ServiceTimeEwma`),
        in which case every shard quotes from the same estimate.
        """
        ewma = self.service_ewma.value
        if ewma is None:
            return DEFAULT_RETRY_AFTER_S
        drains = max(1.0, depth / self.workers)
        return max(1.0, drains * ewma)

    # -- claim-time backpressure -----------------------------------------

    def can_start(self, task: ScheduledTask) -> bool:
        """May this task claim capacity right now?  (False = stay queued.)"""
        lim = self.limits
        for endpoint in task.endpoints:
            if lim.max_active_per_endpoint is not None:
                if self._active_per_endpoint.get(endpoint, 0) >= lim.max_active_per_endpoint:
                    return False
            if lim.max_bytes_in_flight_per_endpoint is not None:
                in_flight = self._bytes_per_endpoint.get(endpoint, 0)
                if in_flight > 0 and in_flight + task.size_hint > lim.max_bytes_in_flight_per_endpoint:
                    return False
        return True

    def on_start(self, task: ScheduledTask) -> None:
        """Charge a claim against both endpoints' capacity."""
        for endpoint in task.endpoints:
            self._active_per_endpoint[endpoint] = (
                self._active_per_endpoint.get(endpoint, 0) + 1)
            self._bytes_per_endpoint[endpoint] = (
                self._bytes_per_endpoint.get(endpoint, 0) + task.size_hint)
        self._inflight_tasks_g.inc(**self._metric_shard)
        self._inflight_bytes_g.inc(task.size_hint, **self._metric_shard)

    def on_finish(self, task: ScheduledTask, service_s: float | None = None) -> None:
        """Release a claim's capacity (completion, failure, or lapse)."""
        for endpoint in task.endpoints:
            self._active_per_endpoint[endpoint] = max(
                0, self._active_per_endpoint.get(endpoint, 0) - 1)
            self._bytes_per_endpoint[endpoint] = max(
                0, self._bytes_per_endpoint.get(endpoint, 0) - task.size_hint)
        self._inflight_tasks_g.dec(**self._metric_shard)
        self._inflight_bytes_g.dec(task.size_hint, **self._metric_shard)
        if service_s is not None:
            self.service_ewma.update(service_s)

    # -- introspection ----------------------------------------------------

    def active_for(self, endpoint: str) -> int:
        """Claims currently charged against one endpoint."""
        return self._active_per_endpoint.get(endpoint, 0)

    def bytes_in_flight_for(self, endpoint: str) -> int:
        """Size-hint bytes currently charged against one endpoint."""
        return self._bytes_per_endpoint.get(endpoint, 0)

    def stats(self) -> dict:
        """Rejections by type plus the service-time EWMA (for dumps)."""
        return {
            "rejections": dict(sorted(self._rejections.items())),
            "service_ewma_s": self.service_ewma.value,
            "retry_after_hint_s": self.retry_after_hint(
                sum(self._active_per_endpoint.values()) // 2 or 1),
        }
