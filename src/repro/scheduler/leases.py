"""Lease-based claims: the exactly-once primitive shared across subsystems.

A *lease* is a time-bounded exclusive claim on one unit of work.  The
fleet scheduler's workers claim transfer tasks under leases
(:mod:`repro.scheduler.workers`), and the archival pipeline's
components claim catalog bundles under them
(:mod:`repro.archive.catalog`) — same discipline both places:

* at most one live lease per item (:class:`LeaseTable` raises on a
  second grant);
* a live claimant renews by heartbeat before ``expires_at``;
* a claimant that crashes never renews, the lease lapses, and the item
  requeues with its attempt count already bumped;
* a claim abandoned to a crash has **no side effects** (the claimant
  dies before doing anything), which is what makes "zero lost, zero
  duplicated" provable for every consumer of this table.

Anything with a ``task_id`` string and an ``attempts`` int can be
leased — :class:`~repro.scheduler.queue.ScheduledTask` and the archive
catalog's request/bundle rows both qualify.

Expiry tracking is a lazy min-heap keyed by ``(expires_at, lease_id)``:
grants and renewals push entries, releases and renewals leave stale
entries behind, and :meth:`LeaseTable.expired` /
:meth:`LeaseTable.next_expiry` discard anything whose ``expires_at`` no
longer matches the lease.  A drain tick therefore pays O(1) when
nothing has lapsed, instead of re-sorting every live lease.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Any, Protocol, runtime_checkable

from repro.errors import LeaseLostError


@runtime_checkable
class Leasable(Protocol):
    """The duck type the lease table claims: an id plus an attempt count."""

    task_id: str
    attempts: int


@dataclass
class Lease:
    """One claimant's time-bounded claim on one item."""

    lease_id: int
    task: Any  # a Leasable: ScheduledTask, archive Bundle, ...
    worker_id: str
    granted_at: float
    expires_at: float
    attempt: int
    #: the claimant crashed before executing; lease will lapse
    abandoned: bool = False
    released: bool = False

    def expired(self, now: float) -> bool:
        """Has the lease lapsed without being released?"""
        return not self.released and now >= self.expires_at


class LeaseTable:
    """Outstanding leases, with the one-live-lease-per-item invariant."""

    def __init__(self) -> None:
        self._by_task: dict[str, Lease] = {}
        self._ids = itertools.count(1)
        self._expiry_heap: list[tuple[float, int, Lease]] = []

    def __len__(self) -> int:
        return len(self._by_task)

    def outstanding(self) -> list[Lease]:
        """Live leases in grant order (a sorted view for tools and tests)."""
        return sorted(self._by_task.values(), key=lambda lease: lease.lease_id)

    def holds(self, task_id: str) -> bool:
        """Is the item currently under a live lease?"""
        return task_id in self._by_task

    def grant(self, task: Any, worker_id: str, now: float,
              lease_s: float) -> Lease:
        """Lease an item to a claimant; a second live lease is a bug."""
        if task.task_id in self._by_task:
            raise LeaseLostError(
                f"task {task.task_id} is already leased to "
                f"{self._by_task[task.task_id].worker_id}"
            )
        lease = Lease(
            lease_id=next(self._ids),
            task=task,
            worker_id=worker_id,
            granted_at=now,
            expires_at=now + lease_s,
            attempt=task.attempts,
        )
        self._by_task[task.task_id] = lease
        heapq.heappush(self._expiry_heap, (lease.expires_at, lease.lease_id, lease))
        return lease

    def renew(self, lease: Lease, now: float, lease_s: float) -> bool:
        """Heartbeat: extend a still-live lease.  False if it lapsed."""
        if lease.released or lease.expired(now):
            return False
        lease.expires_at = now + lease_s
        heapq.heappush(self._expiry_heap, (lease.expires_at, lease.lease_id, lease))
        return True

    def release(self, lease: Lease) -> None:
        """Drop a lease (completion or lapse-requeue)."""
        lease.released = True
        self._by_task.pop(lease.task.task_id, None)

    def _entry_stale(self, expires_at: float, lease: Lease) -> bool:
        return lease.released or expires_at != lease.expires_at

    def expired(self, now: float) -> list[Lease]:
        """Every outstanding lease that has lapsed by ``now``, in grant order.

        Pops the expiry heap up to ``now``; lapsed leases are re-indexed
        so they keep being reported until the caller releases them.
        """
        heap = self._expiry_heap
        lapsed: list[Lease] = []
        while heap and heap[0][0] <= now:
            expires_at, _lease_id, lease = heapq.heappop(heap)
            if self._entry_stale(expires_at, lease):
                continue
            lapsed.append(lease)
        for lease in lapsed:
            heapq.heappush(heap, (lease.expires_at, lease.lease_id, lease))
        lapsed.sort(key=lambda lease: lease.lease_id)
        return lapsed

    def next_expiry(self) -> float | None:
        """Earliest live-lease expiry, or None with no leases outstanding."""
        heap = self._expiry_heap
        while heap:
            expires_at, _lease_id, lease = heap[0]
            if self._entry_stale(expires_at, lease):
                heapq.heappop(heap)
                continue
            return expires_at
        return None
