"""Claim-based workers with leases, heartbeats, and expiry-requeue.

The fleet scheduler's execution model in one paragraph: workers *claim*
tasks from the fair-share queue under a **lease** (the lease/heartbeat/
expiry-requeue primitive itself lives in
:mod:`repro.scheduler.leases`, shared with the archival pipeline's
components).  A live worker
renews its lease by heartbeat (a repeating virtual-time event) while it
drives the claim to completion; a worker whose host crashes never
heartbeats, its lease lapses, and the task **requeues** with its
attempt count bumped — at the front of its user's FIFO, since a crashed
worker must not cost the user their dispatch slot.  A claim abandoned
to a crash has *no side effects* (the worker dies before moving bytes),
which is what makes "zero lost, zero duplicated tasks" provable: every
task is executed by exactly one worker, exactly once, or marked FAILED
after ``max_task_attempts`` lapses.

Virtual-time semantics (documented contract, see DESIGN.md §11): within
one pool *tick* every free, live worker claims a task at the same
virtual instant — so per-endpoint concurrency caps and bytes-in-flight
budgets bind over the claimed set — and the claims then execute
serially in virtual time, each through the existing
:class:`~repro.recovery.engine.RecoveryEngine` machinery inside its
payload, so chaos campaigns exercise the queue end to end.  When no
worker can make progress (all crashed, or all capacity held by lapsed
claims), the pool advances the clock to the next lease expiry or host
recovery instead of spinning.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import ReproError, SchedulerError
from repro.scheduler.batching import (
    DEFAULT_BATCH_MAX_FILES,
    DEFAULT_BATCH_THRESHOLD_BYTES,
    BatchCoalescer,
    CoalescedBatch,
)
from repro.scheduler.leases import Lease, LeaseTable
from repro.scheduler.limits import (
    AdmissionController,
    SchedulerLimits,
    ServiceTimeEwma,
)
from repro.scheduler.queue import FairShareQueue, ScheduledTask, TaskState

__all__ = [
    "SchedulerConfig", "Lease", "LeaseTable", "Worker", "FleetScheduler",
]

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.world import World

#: queue-wait / service-time buckets (virtual seconds, fleet scale)
_WAIT_BUCKETS = (0.1, 1.0, 5.0, 15.0, 60.0, 300.0, 1800.0, 3600.0, 6 * 3600.0)


@dataclass(frozen=True)
class SchedulerConfig:
    """Knobs for one :class:`FleetScheduler`.

    ``worker_hosts`` maps workers onto topology hosts for crash
    modelling (chaos host faults on those hosts kill the worker's
    claims); workers beyond the list run "virtual" and never crash.
    """

    workers: int = 4
    worker_hosts: tuple[str, ...] = ()
    lease_s: float = 120.0
    heartbeat_s: float = 20.0
    max_task_attempts: int = 8
    batch_threshold_bytes: int = DEFAULT_BATCH_THRESHOLD_BYTES
    batch_max_files: int = DEFAULT_BATCH_MAX_FILES
    limits: SchedulerLimits = field(default_factory=SchedulerLimits)

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("need at least one worker")
        if self.lease_s <= 0 or self.heartbeat_s <= 0:
            raise ValueError("lease_s and heartbeat_s must be positive")
        if self.heartbeat_s >= self.lease_s:
            raise ValueError("heartbeat_s must be shorter than lease_s "
                             "(a live worker must renew before expiry)")
        if self.max_task_attempts < 1:
            raise ValueError("max_task_attempts must be at least 1")


@dataclass
class Worker:
    """One claim-slot: an id, an optional host, and a current lease."""

    worker_id: str
    host: str | None = None
    lease: Lease | None = None
    crashes: int = 0


class FleetScheduler:
    """Queue + admission + coalescer + worker pool, behind one facade.

    ``fold_batch`` is the domain hook: given a
    :class:`~repro.scheduler.batching.CoalescedBatch` of small tasks it
    builds the single batch task to dispatch instead (the Globus Online
    service folds them into one pipelined ``BatchTransferJob``).  With
    no hook, batching is off and every task dispatches as submitted.

    ``shard`` embeds this scheduler as one shard of a
    :class:`~repro.scheduler.sharding.ShardedFleetScheduler`: every
    ``scheduler_*`` series gains a ``shard`` label, every scheduler
    event carries a ``shard=`` field, and worker ids take
    ``worker_prefix`` so they stay unique across the fleet.  With
    ``shard=None`` (the default) registrations, events, and worker
    names are exactly the label-free single-scheduler ones.
    """

    def __init__(
        self,
        world: "World",
        config: SchedulerConfig | None = None,
        fold_batch: Callable[[CoalescedBatch], ScheduledTask] | None = None,
        *,
        shard: str | None = None,
        worker_prefix: str = "w",
        service_ewma: ServiceTimeEwma | None = None,
    ) -> None:
        self.world = world
        self.config = config or SchedulerConfig()
        self.shard = shard
        self.queue = FairShareQueue()
        self.admission = AdmissionController(
            world, self.config.limits, workers=self.config.workers,
            shard=shard, service_ewma=service_ewma)
        self.fold_batch = fold_batch
        self.coalescer = BatchCoalescer(
            threshold_bytes=self.config.batch_threshold_bytes
            if fold_batch is not None else 0,
            max_files=self.config.batch_max_files,
        )
        self.leases = LeaseTable()
        self.workers = [
            Worker(
                worker_id=f"{worker_prefix}{i}",
                host=self.config.worker_hosts[i]
                if i < len(self.config.worker_hosts) else None,
            )
            for i in range(self.config.workers)
        ]
        self._workers_by_id = {w.worker_id: w for w in self.workers}
        self._task_ids = itertools.count(1)
        self._completed: list[ScheduledTask] = []
        # sharded instances label series and stamp events by shard; the
        # unsharded path passes empty dicts so nothing changes
        self._metric_shard = {} if shard is None else {"shard": shard}
        self._event_shard = dict(self._metric_shard)
        shard_labels = () if shard is None else ("shard",)

        # pre-register every scheduler_* instrument so the series are
        # visible in Prometheus exposition from init, before any traffic
        metrics = world.metrics
        self._submitted_c = metrics.counter(
            "scheduler_submitted_total", "Tasks accepted into the fleet queue",
            labelnames=shard_labels)
        self._completed_c = metrics.counter(
            "scheduler_completed_total", "Tasks serviced to completion",
            labelnames=shard_labels)
        self._failed_c = metrics.counter(
            "scheduler_task_failures_total",
            "Tasks abandoned after exhausting their claim attempts or raising",
            labelnames=shard_labels)
        self._requeued_c = metrics.counter(
            "scheduler_requeued_total", "Tasks returned to the queue by lease lapses",
            labelnames=shard_labels)
        self._expired_c = metrics.counter(
            "scheduler_lease_expirations_total", "Leases that lapsed without release",
            labelnames=shard_labels)
        self._crashes_c = metrics.counter(
            "scheduler_worker_crashes_total", "Claims lost to worker host crashes",
            labelnames=shard_labels)
        self._batches_c = metrics.counter(
            "scheduler_batches_coalesced_total",
            "Batch tasks built by small-file coalescing",
            labelnames=shard_labels)
        self._batched_files_c = metrics.counter(
            "scheduler_batched_files_total", "Single-file tasks folded into batches",
            labelnames=shard_labels)
        self._bytes_c = metrics.counter(
            "scheduler_bytes_delivered_total", "Bytes delivered, by user",
            labelnames=shard_labels + ("user",))
        for counter in (self._submitted_c, self._completed_c, self._failed_c,
                        self._requeued_c, self._expired_c, self._crashes_c,
                        self._batches_c, self._batched_files_c):
            counter.inc(0, **self._metric_shard)
        self._depth_g = metrics.gauge(
            "scheduler_queue_depth", "Tasks waiting for dispatch",
            labelnames=shard_labels)
        self._fair_error_g = metrics.gauge(
            "scheduler_fair_share_error",
            "Max |byte share - weight share| across active users",
            labelnames=shard_labels)
        self._workers_alive_g = metrics.gauge(
            "scheduler_workers_alive", "Workers whose hosts are currently up",
            labelnames=shard_labels)
        self._depth_g.set(0, **self._metric_shard)
        self._fair_error_g.set(0, **self._metric_shard)
        # the fair-share-error gauge costs O(active users) to recompute;
        # refresh it every completion for small fleets but amortize to
        # one full pass per ~lanes/64 completions at 100k-user scale
        # (run_until_idle always leaves it freshly computed on exit)
        self._fair_stride = 1
        self._since_fair = 0
        self._workers_alive_g.set(self.config.workers, **self._metric_shard)
        self._wait_h = metrics.histogram(
            "scheduler_queue_wait_seconds",
            "Virtual seconds between submit and first claim",
            buckets=_WAIT_BUCKETS, labelnames=shard_labels)
        self._service_h = metrics.histogram(
            "scheduler_service_seconds",
            "Virtual seconds a claim spent executing",
            buckets=_WAIT_BUCKETS, labelnames=shard_labels)
        # limits gauges are registered by the AdmissionController

    # -- submission --------------------------------------------------------

    def next_task_id(self) -> str:
        """A fresh scheduler-scoped task id."""
        return f"task-{next(self._task_ids):06d}"

    def submit(self, task: ScheduledTask) -> ScheduledTask:
        """Admit a task (or raise typed backpressure) and enqueue it.

        Small tasks may be absorbed by the coalescer; they re-emerge as
        one pipelined batch task at the next dispatch round.
        """
        self.admission.admit(
            task,
            queue_depth=len(self.queue) + len(self.coalescer),
            user_depth=self.queue.depth_for(task.user) + self.coalescer.depth_for(task.user),
        )
        if not task.task_id:
            task.task_id = self.next_task_id()
        task.submitted_at = self.world.now
        self._submitted_c.inc(**self._metric_shard)
        with self.world.tracer.span(
            "scheduler.submit", task=task.task_id, user=task.user
        ) as sp:
            task.trace_id = sp.context.trace_id
            self.world.emit(
                "scheduler.submitted", "task queued",
                task=task.task_id, user=task.user, job=task.job_id,
                bytes=task.size_hint,
                src=task.src_endpoint, dst=task.dst_endpoint,
                lane_vtime=self.queue.lane_vtime(task.user),
                **self._event_shard,
            )
            absorbed = self.coalescer.add(task)
            if absorbed is not None:
                self.queue.push(absorbed)
        self._depth_g.set(len(self.queue) + len(self.coalescer), **self._metric_shard)
        return task

    def set_weight(self, user: str, weight: float) -> None:
        """Assign a user's fair-share weight."""
        self.queue.set_weight(user, weight)

    # -- the drain loop ----------------------------------------------------

    def run_until_idle(self, max_ticks: int | None = None) -> int:
        """Dispatch until queue and leases are empty; returns tasks serviced.

        This *is* the fleet scheduler's event loop, on virtual time, and
        it is event-driven: every claim round is preceded by a wakeup
        event — task-available (submit/flush/requeue), worker-free
        (completion or lapse), or lease-expiry/host-recovery (the clock
        jumps straight to the earliest one via :meth:`_wait_for_next_event`
        when nothing can run; no fixed-interval polling ever happens).
        While the drain runs, a single repeating sweep renews every live
        lease — one scheduler event per heartbeat interval for the whole
        pool, not one per in-flight task.
        """
        serviced = 0
        ticks = 0
        sweep = self.world.scheduler.every(
            self.config.heartbeat_s, self._sweep_heartbeats,
            label="scheduler.heartbeat-sweep")
        try:
            while True:
                self._flush_batches()
                self._requeue_lapsed()
                if not len(self.queue) and not len(self.leases):
                    break
                ticks += 1
                if max_ticks is not None and ticks > max_ticks:
                    raise SchedulerError(
                        f"drain did not converge within {max_ticks} ticks")
                serviced += self._tick()
                self._depth_g.set(len(self.queue) + len(self.coalescer),
                                  **self._metric_shard)
        finally:
            sweep.cancel()
        self._fair_error_g.set(self.queue.fair_share_error(),
                               **self._metric_shard)
        # surface how much of the drain's login traffic the control-channel
        # pool absorbed (only when a pool saw any traffic this world)
        pool = getattr(self.world, "_control_channel_pool", None)
        if pool is not None and (pool.reuses or pool.misses):
            self.world.metrics.gauge(
                "scheduler_session_reuse_ratio",
                "Fraction of control-channel logins served from the pool",
            ).set(pool.reuses / (pool.reuses + pool.misses))
        return serviced

    def _flush_batches(self) -> None:
        if not len(self.coalescer):
            return
        for task in self.coalescer.flush(self._fold):
            self.queue.push(task)

    def _fold(self, bucket: CoalescedBatch) -> ScheduledTask:
        assert self.fold_batch is not None
        task = self.fold_batch(bucket)
        if not task.task_id:
            task.task_id = self.next_task_id()
        self._batches_c.inc(**self._metric_shard)
        self._batched_files_c.inc(len(bucket.tasks), **self._metric_shard)
        self.world.emit(
            "scheduler.coalesced", "small files folded into one batch task",
            task=task.task_id, user=bucket.user, files=len(bucket.tasks),
            bytes=bucket.total_bytes, **self._event_shard,
        )
        return task

    def _alive(self, worker: Worker, now: float) -> bool:
        return worker.host is None or not self.world.faults.host_down(worker.host, now)

    def _claim_for(self, worker: Worker, now: float) -> Lease | None:
        """One worker claims this scheduler's next dispatchable task.

        Returns None when nothing is runnable (empty queue or every lane
        head inadmissible).  A returned lease with ``abandoned=True``
        means the claim happened but the worker's host crashes inside
        the lease window — the claim is parked on the worker and will
        requeue by lapse.  The worker may belong to *another* shard (the
        work-stealing path): all bookkeeping stays on this scheduler's
        queue/lease/admission books; only the worker identity and crash
        model come from the claimant.
        """
        world = self.world
        task = self.queue.pop_next(admissible=self.admission.can_start)
        if task is None:
            return None
        task.attempts += 1
        self.admission.on_start(task)
        lease = self.leases.grant(task, worker.worker_id, now, self.config.lease_s)
        task.claimed_at = now
        wait_s = now - task.submitted_at
        self._wait_h.observe(wait_s, exemplar=task.trace_id or None,
                             **self._metric_shard)
        if task.on_claim is not None:
            task.on_claim(task)
        world.emit(
            "scheduler.claimed", "task leased to worker",
            task=task.task_id, worker=worker.worker_id,
            attempt=task.attempts, lease_expires_at=lease.expires_at,
            wait_s=wait_s, trace=task.trace_id or None, **self._event_shard,
        )
        # Crash model: a host fault beginning inside the lease window
        # kills this claim before any byte moves — the lease simply
        # lapses and the task requeues.  No partial side effects.
        crash_at = None
        if worker.host is not None:
            crash_at = world.faults.first_interruption(
                (), (worker.host,), now, now + self.config.lease_s)
        if crash_at is not None:
            lease.abandoned = True
            worker.lease = lease
            worker.crashes += 1
            self._crashes_c.inc(**self._metric_shard)
            world.emit(
                "scheduler.worker_crashed", "worker lost mid-claim; lease will lapse",
                task=task.task_id, worker=worker.worker_id, crash_at=crash_at,
                **self._event_shard,
            )
        return lease

    def _claim_phase(
        self, now: float
    ) -> tuple[list[tuple[Worker, Lease]], list[Worker], int]:
        """Every free, live worker claims at the same virtual instant.

        Returns ``(claims, free, alive)``: the executable claims in claim
        order, the workers that stayed free (nothing runnable locally —
        work-stealing candidates for a sharded router), and the live
        worker count.
        """
        claims: list[tuple[Worker, Lease]] = []
        free: list[Worker] = []
        alive = 0
        for worker in self.workers:
            if worker.lease is not None:
                continue  # still holding an abandoned claim
            if not self._alive(worker, now):
                continue
            alive += 1
            if not len(self.queue):
                free.append(worker)
                continue  # nothing queued: the scan only refreshes liveness
            lease = self._claim_for(worker, now)
            if lease is None:
                free.append(worker)
            elif not lease.abandoned:
                claims.append((worker, lease))
        return claims, free, alive

    def _tick(self) -> int:
        """One claim round: simultaneous claims, serial execution."""
        now = self.world.now
        claims, _free, alive = self._claim_phase(now)
        self._workers_alive_g.set(alive, **self._metric_shard)

        executed = 0
        for worker, lease in claims:
            self._execute(worker, lease)
            executed += 1
        if executed == 0 and not claims:
            self._wait_for_next_event()
        return executed

    def _execute(self, worker: Worker, lease: Lease) -> None:
        world = self.world
        task = lease.task
        started = world.now
        try:
            with world.tracer.span(
                "scheduler.claim",
                task=task.task_id, worker=worker.worker_id,
                user=task.user, attempt=task.attempts,
            ):
                # the dispatch event binds this claim's trace to the task,
                # so recovery/transfer events emitted inside the claim span
                # attach causally to the task's flight record
                world.emit(
                    "scheduler.dispatch", "claim executing",
                    task=task.task_id, worker=worker.worker_id,
                    attempt=task.attempts, trace=task.trace_id or None,
                    **self._event_shard,
                )
                try:
                    result = task.execute()
                except ReproError as exc:
                    task.state = TaskState.FAILED
                    task.error = str(exc)
                    self._failed_c.inc(**self._metric_shard)
                    world.emit(
                        "scheduler.task_failed", "task raised during execution",
                        task=task.task_id, error=str(exc),
                        trace=task.trace_id or None, **self._event_shard,
                    )
                else:
                    task.state = TaskState.DONE
                    delivered = task.size_hint
                    if task.measure is not None:
                        delivered = task.measure(result)
                    task.delivered_bytes = delivered
                    self.queue.charge(task.user, delivered)
                    self._bytes_c.inc(delivered, user=task.user,
                                      **self._metric_shard)
                    self._completed_c.inc(**self._metric_shard)
                    self._completed.append(task)
                    world.emit(
                        "scheduler.task_done", "task serviced",
                        task=task.task_id, user=task.user, bytes=delivered,
                        attempts=task.attempts, trace=task.trace_id or None,
                        **self._event_shard,
                    )
        finally:
            service_s = world.now - started
            self._service_h.observe(service_s, exemplar=task.trace_id or None,
                                    **self._metric_shard)
            self.leases.release(lease)
            self.admission.on_finish(task, service_s)
            self._since_fair += 1
            if self._since_fair >= self._fair_stride:
                self._since_fair = 0
                self._fair_error_g.set(self.queue.fair_share_error(),
                                       **self._metric_shard)
                self._fair_stride = max(1, self.queue.lane_count() // 64)

    def _sweep_heartbeats(self) -> None:
        """Renew every live claim in one pass (the coalesced heartbeat).

        Replaces the per-task repeating heartbeat events: one scheduler
        event per interval covers the whole pool.  Abandoned claims are
        never renewed (their worker crashed; the lease must lapse), and
        a downed host cannot renew.
        """
        now = self.world.now
        faults = self.world.faults
        for lease in self.leases.outstanding():
            if lease.abandoned:
                continue
            worker = self._workers_by_id.get(lease.worker_id)
            host = worker.host if worker is not None else None
            if host is not None and faults.host_down(host, now):
                continue
            self.leases.renew(lease, now, self.config.lease_s)

    def _requeue_lapsed(self) -> None:
        world = self.world
        for lease in self.leases.expired(world.now):
            task = lease.task
            self.leases.release(lease)
            self.admission.on_finish(task)
            self._expired_c.inc(**self._metric_shard)
            worker = self._workers_by_id.get(lease.worker_id)
            if worker is not None and worker.lease is lease:
                worker.lease = None
            world.emit(
                "scheduler.lease_expired", "lease lapsed; reclaiming task",
                task=task.task_id, worker=lease.worker_id,
                attempt=lease.attempt, trace=task.trace_id or None,
                **self._event_shard,
            )
            if task.attempts >= self.config.max_task_attempts:
                task.state = TaskState.FAILED
                task.error = (
                    f"abandoned after {task.attempts} lapsed claims "
                    f"(max_task_attempts={self.config.max_task_attempts})"
                )
                self._failed_c.inc(**self._metric_shard)
                if task.on_requeue is not None:
                    task.on_requeue(task)
                world.emit(
                    "scheduler.task_failed", "task exhausted its claim attempts",
                    task=task.task_id, attempts=task.attempts,
                    trace=task.trace_id or None, **self._event_shard,
                )
                continue
            self.queue.requeue(task)
            self._requeued_c.inc(**self._metric_shard)
            if task.on_requeue is not None:
                task.on_requeue(task)

    def _next_event_candidates(self, now: float) -> list[float]:
        """Future wakeup times: earliest lease expiry + host recoveries.

        Split out so a sharded router can merge candidates across every
        shard before advancing the one shared clock.
        """
        world = self.world
        candidates: list[float] = []
        next_expiry = self.leases.next_expiry()
        if next_expiry is not None:
            candidates.append(next_expiry)
        for worker in self.workers:
            if worker.host is not None and not self._alive(worker, now):
                up = world.faults.next_clear_time((), (worker.host,), now)
                if up > now:
                    candidates.append(up)
        return [t for t in candidates if t > now and math.isfinite(t)]

    def _wait_for_next_event(self) -> None:
        """Nothing can run now: jump to the next expiry or host recovery."""
        world = self.world
        future = self._next_event_candidates(world.now)
        if not future:
            raise SchedulerError(
                "scheduler stalled: tasks queued but no worker can ever run them"
            )
        world.advance_to(min(future))

    # -- introspection -----------------------------------------------------

    @property
    def completed_tasks(self) -> tuple[ScheduledTask, ...]:
        """Tasks serviced to completion, in completion order."""
        return tuple(self._completed)

    def snapshot(self) -> dict[str, Any]:
        """Queue/lease/worker state for dumps and tests."""
        return {
            "now": self.world.now,
            "queued": [
                {
                    "task": t.task_id, "user": t.user, "state": t.state.value,
                    "priority": t.priority, "attempts": t.attempts,
                    "bytes": t.size_hint, "waiting_s": self.world.now - t.submitted_at,
                    "route": f"{t.src_endpoint}->{t.dst_endpoint}",
                }
                for t in self.queue.tasks()
            ],
            "leases": [
                {
                    "task": lease.task.task_id, "worker": lease.worker_id,
                    "granted_at": lease.granted_at, "expires_at": lease.expires_at,
                    "attempt": lease.attempt, "abandoned": lease.abandoned,
                }
                for lease in self.leases.outstanding()
            ],
            "workers": [
                {
                    "worker": w.worker_id, "host": w.host or "-",
                    "alive": self._alive(w, self.world.now),
                    "crashes": w.crashes,
                }
                for w in self.workers
            ],
            "lanes": self.queue.lane_stats(),
            "global_vtime": self.queue.global_vtime,
            "admission": self.admission.stats(),
            "expiry_heap": [
                {
                    "task": lease.task.task_id, "worker": lease.worker_id,
                    "expires_at": lease.expires_at,
                    "expires_in_s": lease.expires_at - self.world.now,
                    "abandoned": lease.abandoned,
                }
                for lease in sorted(
                    self.leases.outstanding(),
                    key=lambda le: (le.expires_at, le.lease_id))
            ],
        }
