"""Fleet transfer scheduler: fair-share queue, leases, admission, batching.

See DESIGN.md §11 for the scheduling model.  The public surface:

* :class:`FairShareQueue` / :class:`ScheduledTask` — byte-weighted fair
  queuing with FIFO tie-breaks (``queue``).
* :class:`FleetScheduler` / :class:`SchedulerConfig` — the worker pool
  facade with lease-based claims (``workers``).
* :class:`SchedulerLimits` / :class:`AdmissionController` — bounded
  queue, quotas, per-endpoint backpressure (``limits``).
* :class:`BatchCoalescer` — small-file coalescing (``batching``).
* :class:`ShardedFleetScheduler` / :func:`user_shard` /
  :func:`scheduler_fingerprint` — the sharded control plane and its
  equivalence gate (``sharding``, DESIGN.md §14).
"""

from repro.scheduler.batching import (
    DEFAULT_BATCH_MAX_FILES,
    DEFAULT_BATCH_THRESHOLD_BYTES,
    BatchCoalescer,
    CoalescedBatch,
)
from repro.scheduler.leases import Lease, LeaseTable
from repro.scheduler.limits import (
    DEFAULT_RETRY_AFTER_S,
    AdmissionController,
    SchedulerLimits,
    ServiceTimeEwma,
)
from repro.scheduler.queue import (
    FairShareQueue,
    ScheduledTask,
    TaskState,
    jain_index,
)
from repro.scheduler.sharding import (
    ShardedFleetScheduler,
    scheduler_fingerprint,
    user_shard,
)
from repro.scheduler.workers import (
    FleetScheduler,
    SchedulerConfig,
    Worker,
)

__all__ = [
    "AdmissionController",
    "BatchCoalescer",
    "CoalescedBatch",
    "DEFAULT_BATCH_MAX_FILES",
    "DEFAULT_BATCH_THRESHOLD_BYTES",
    "DEFAULT_RETRY_AFTER_S",
    "FairShareQueue",
    "FleetScheduler",
    "Lease",
    "LeaseTable",
    "ScheduledTask",
    "SchedulerConfig",
    "SchedulerLimits",
    "ServiceTimeEwma",
    "ShardedFleetScheduler",
    "TaskState",
    "Worker",
    "jain_index",
    "scheduler_fingerprint",
    "user_shard",
]
