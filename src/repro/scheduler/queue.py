"""The fleet task queue: weighted fair-share over *bytes*, FIFO ties.

The hosted service of paper Section VI mediates transfers for many
users at once; what keeps one user's million-file campaign from
starving everyone else is this queue.  It implements start-time fair
queuing (a stride/virtual-time discipline) over **delivered bytes**,
not job counts: every user carries a virtual time, dispatch always
picks the lowest-virtual-time user with a runnable task, and finishing
a task advances that user's virtual time by ``bytes / weight``.  Heavy
users therefore fall behind in virtual time and light users catch up —
byte shares converge to the weight vector regardless of task sizes.

Determinism: selection is ``min()`` over ``(band, vtime, head_seq)``
where ``seq`` is the global submission counter, so ordering is
seed-stable and independent of dict enumeration order.  Priority bands
dispatch strictly before lower bands; fair-share applies within a band.

Selection is O(log U) in the number of users: lane heads are indexed in
a lazy min-heap keyed by ``(band, vtime, head_seq)``.  Every operation
that can change a lane's dispatch key (push to an idle lane, requeue,
charge, head pop) bumps the lane's version and pushes a fresh heap
entry; stale entries are discarded when they surface.  The pre-heap
linear scan survives as :class:`LinearScanFairShareQueue` — the
executable specification the differential property test replays against.

Lane records are stored **struct-of-arrays**: per-user weight, virtual
time, delivered bytes, and heap version live in parallel
:class:`array.array` columns indexed by a dense lane number, with the
FIFOs in a parallel list.  The drain loop's per-completion accounting
(``charge`` → reindex) touches two C-double slots instead of a Python
object per lane, and whole-fleet summaries (``fair_share_error``) can
sweep the columns vectorized when numpy is present.  ``array('d')``
stores IEEE doubles exactly, so virtual-time arithmetic is bit-for-bit
identical to the previous attribute-based records — the scheduler
fingerprint does not move.  External callers that need a lane *object*
(the resharding migration path) go through :meth:`FairShareQueue._lane`,
which returns a write-through view over the columns.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from array import array
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.util.vector import HAS_NUMPY, np

#: below this many active lanes the scalar fair-share sweep wins
_VECTOR_MIN_LANES = 16


class TaskState(enum.Enum):
    """Lifecycle of a queued task."""

    QUEUED = "queued"
    CLAIMED = "claimed"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


@dataclass
class ScheduledTask:
    """One unit of work the fleet scheduler dispatches.

    ``execute`` runs the work inline in virtual time and returns an
    arbitrary result; the queue itself never calls it — workers do.
    ``size_hint`` feeds admission budgets and the fair-share charge
    until the actual delivered byte count is known.
    """

    task_id: str
    user: str
    src_endpoint: str
    dst_endpoint: str
    size_hint: int
    execute: Callable[[], Any]
    priority: int = 0
    submitted_at: float = 0.0
    claimed_at: float = 0.0
    seq: int = 0
    attempts: int = 0
    state: TaskState = TaskState.QUEUED
    job_id: str = ""
    delivered_bytes: int = 0
    error: str = ""
    #: trace id of the submit span — the task's primary trace, carried on
    #: every scheduler event and used as the histogram exemplar
    trace_id: str = ""
    #: sub-threshold tasks may fold into a batch unless this is False
    coalesce: bool = True
    #: callbacks the owning service uses to reflect state onto its jobs
    on_claim: Callable[["ScheduledTask"], None] | None = None
    on_requeue: Callable[["ScheduledTask"], None] | None = None
    #: extracts actual delivered bytes from ``execute``'s result; the
    #: fair-share charge falls back to ``size_hint`` without one
    measure: Callable[[Any], int] | None = None

    @property
    def endpoints(self) -> tuple[str, str]:
        """The (source, destination) endpoint pair the task occupies."""
        return (self.src_endpoint, self.dst_endpoint)


class _LaneView:
    """Write-through handle over one lane's struct-of-arrays columns.

    Exists for callers that need a lane *object* — the resharding
    migration path sets ``weight``/``vtime``/``delivered_bytes`` on
    drained lanes directly.  The queue's own hot paths index the column
    arrays; this view is never on them.
    """

    __slots__ = ("_q", "_i")

    def __init__(self, queue: "FairShareQueue", index: int) -> None:
        self._q = queue
        self._i = index

    @property
    def weight(self) -> float:
        return self._q._weights[self._i]

    @weight.setter
    def weight(self, value: float) -> None:
        self._q._weights[self._i] = float(value)

    @property
    def vtime(self) -> float:
        return self._q._vtimes[self._i]

    @vtime.setter
    def vtime(self, value: float) -> None:
        self._q._vtimes[self._i] = float(value)

    @property
    def delivered_bytes(self) -> int:
        return self._q._delivered[self._i]

    @delivered_bytes.setter
    def delivered_bytes(self, value: int) -> None:
        self._q._delivered[self._i] = int(value)

    @property
    def fifo(self) -> deque:
        return self._q._fifos[self._i]

    @property
    def version(self) -> int:
        return self._q._versions[self._i]


class FairShareQueue:
    """Byte-weighted fair queuing across users with FIFO tie-breaks.

    Dispatch is O(log U): runnable lanes are indexed by a lazy min-heap
    of ``((band, vtime, head_seq), version, lane_index)`` entries over
    the struct-of-arrays lane columns.
    """

    def __init__(self) -> None:
        #: user -> dense lane index into the column arrays
        self._index: dict[str, int] = {}
        self._users: list[str] = []
        self._weights = array("d")
        self._vtimes = array("d")
        self._delivered = array("q")
        self._versions = array("q")
        self._fifos: list[deque] = []
        self._seq = itertools.count(1)
        self._global_vtime = 0.0
        self._depth = 0
        #: lazy heap of (dispatch key, lane version, lane index) over heads
        self._heap: list[tuple[tuple[int, float, int], int, int]] = []

    def _lane_index(self, user: str) -> int:
        """The user's dense lane index, allocating columns on first touch."""
        i = self._index.get(user)
        if i is None:
            i = len(self._users)
            self._index[user] = i
            self._users.append(user)
            self._weights.append(1.0)
            self._vtimes.append(0.0)
            self._delivered.append(0)
            self._versions.append(0)
            self._fifos.append(deque())
        return i

    def _lane(self, user: str) -> _LaneView:
        """A write-through lane view (resharding/compat; not a hot path)."""
        return _LaneView(self, self._lane_index(user))

    def _reindex(self, i: int) -> None:
        """The lane's dispatch key changed: invalidate and re-push."""
        self._versions[i] += 1
        fifo = self._fifos[i]
        if fifo:
            head = fifo[0]
            heapq.heappush(
                self._heap,
                ((-head.priority, self._vtimes[i], head.seq), self._versions[i], i),
            )

    # -- weights ----------------------------------------------------------

    def set_weight(self, user: str, weight: float) -> None:
        """Assign a fair-share weight (default 1.0; must be positive)."""
        if weight <= 0:
            raise ValueError(f"fair-share weight must be positive (got {weight})")
        i = self._lane_index(user)
        self._weights[i] = float(weight)
        self._reindex(i)

    def weight(self, user: str) -> float:
        """The user's fair-share weight."""
        i = self._index.get(user)
        return self._weights[i] if i is not None else 1.0

    # -- queue operations -------------------------------------------------

    def __len__(self) -> int:
        return self._depth

    def depth_for(self, user: str) -> int:
        """Queued tasks currently held for one user."""
        i = self._index.get(user)
        return len(self._fifos[i]) if i is not None else 0

    def lane_count(self) -> int:
        """Users with any lane state (active or historical)."""
        return len(self._users)

    def push(self, task: ScheduledTask) -> ScheduledTask:
        """Enqueue a task (stamps its FIFO sequence number).

        A user idle at push time re-enters at the current global virtual
        time — an idle period earns no retroactive credit, which is what
        keeps a returning user from locking out everyone who kept
        working (the standard start-time fair queuing rule).
        """
        i = self._lane_index(task.user)
        fifo = self._fifos[i]
        was_idle = not fifo
        if was_idle and self._vtimes[i] < self._global_vtime:
            self._vtimes[i] = self._global_vtime
        task.seq = next(self._seq)
        task.state = TaskState.QUEUED
        fifo.append(task)
        self._depth += 1
        if was_idle:  # a tail append behind an existing head changes no key
            self._reindex(i)
        return task

    def requeue(self, task: ScheduledTask) -> ScheduledTask:
        """Return a lapsed claim to the queue with its attempt count kept.

        The task goes to the *front* of its user's FIFO: it already won a
        dispatch slot once, so a crashed worker must not cost the user
        their place behind later submissions.
        """
        i = self._lane_index(task.user)
        fifo = self._fifos[i]
        if not fifo and self._vtimes[i] < self._global_vtime:
            self._vtimes[i] = self._global_vtime
        task.state = TaskState.QUEUED
        fifo.appendleft(task)
        self._depth += 1
        self._reindex(i)
        return task

    def pop_next(
        self, admissible: Callable[[ScheduledTask], bool] | None = None
    ) -> ScheduledTask | None:
        """Dispatch the next task, honouring bands, fairness, and FIFO.

        ``admissible`` is the backpressure hook: a lane whose head fails
        the check is skipped this round (the task stays queued and keeps
        its position).  Returns None when nothing is runnable.

        The winner is the minimum ``(band, vtime, head_seq)`` over lanes
        with an admissible head — popped from the lazy heap in O(log U),
        discarding stale entries and setting inadmissible lanes aside
        (their entries are still current, so they go straight back).
        """
        heap = self._heap
        versions = self._versions
        fifos = self._fifos
        skipped: list[tuple[tuple[int, float, int], int, int]] = []
        best = -1
        while heap:
            _key, version, i = heap[0]
            fifo = fifos[i]
            if version != versions[i] or not fifo:
                heapq.heappop(heap)  # stale: the lane was re-keyed or emptied
                continue
            if admissible is not None and not admissible(fifo[0]):
                skipped.append(heapq.heappop(heap))
                continue
            heapq.heappop(heap)
            best = i
            break
        for entry in skipped:
            heapq.heappush(heap, entry)
        if best < 0:
            return None
        task = self._fifos[best].popleft()
        self._depth -= 1
        task.state = TaskState.CLAIMED
        vt = self._vtimes[best]
        if vt > self._global_vtime:
            self._global_vtime = vt
        self._reindex(best)
        return task

    def charge(self, user: str, nbytes: int) -> None:
        """Advance a user's virtual time by ``nbytes / weight``.

        Called on task completion with the *actual* delivered bytes, so
        fair-share converges on real byte shares even when size hints
        were wrong.
        """
        i = self._lane_index(user)
        self._vtimes[i] += nbytes / self._weights[i]
        self._delivered[i] += nbytes
        self._reindex(i)
        if self._depth == 0:
            # end of a busy period: global virtual time catches up to the
            # largest finish tag served (the SFQ idle-transition rule), so
            # a user who worked alone carries no debt into the next burst.
            if self._vtimes[i] > self._global_vtime:
                self._global_vtime = self._vtimes[i]

    # -- introspection ----------------------------------------------------

    @property
    def global_vtime(self) -> float:
        """The queue-wide virtual time (max finish tag served so far)."""
        return self._global_vtime

    def lane_vtime(self, user: str) -> float:
        """The virtual start tag a task pushed for ``user`` would carry.

        An idle lane re-enters at the global virtual time, so this is
        ``max(lane.vtime, global_vtime)`` — the number the flight
        recorder stamps on the submit event.
        """
        i = self._index.get(user)
        if i is None or not self._fifos[i]:
            base = self._vtimes[i] if i is not None else 0.0
            return max(base, self._global_vtime)
        return self._vtimes[i]

    def lane_stats(self) -> list[dict[str, Any]]:
        """Per-user lane state (weight, vtime tag, depth, delivered bytes)."""
        out = []
        for user in sorted(self._index):
            i = self._index[user]
            fifo = self._fifos[i]
            out.append({
                "user": user,
                "weight": self._weights[i],
                "vtime": self.lane_vtime(user),
                "depth": len(fifo),
                "delivered_bytes": self._delivered[i],
                "head_seq": fifo[0].seq if fifo else None,
            })
        return out

    def tasks(self) -> Iterator[ScheduledTask]:
        """Every queued task, in deterministic (user, FIFO) order."""
        for user in sorted(self._index):
            yield from self._fifos[self._index[user]]

    def delivered_bytes(self) -> dict[str, int]:
        """Bytes charged per user so far (the fairness evidence)."""
        return {
            user: self._delivered[i]
            for user, i in sorted(self._index.items())
            if self._delivered[i]
        }

    def fair_share_error(self) -> float:
        """Max absolute deviation between byte shares and weight shares.

        0.0 is perfect weighted fairness; only users that have received
        bytes (or hold queued work) participate.  With numpy present and
        enough active lanes the elementwise sweep runs vectorized over
        the lane columns; the share sums stay sequential (first-touch
        lane order) in both backends, and elementwise IEEE division,
        abs, and max are bit-identical between numpy and pure Python,
        so both paths return the same float.
        """
        active = [
            i for i in range(len(self._users))
            if self._delivered[i] or self._fifos[i]
        ]
        if not active:
            return 0.0
        total = sum(self._delivered[i] for i in active)
        if total <= 0:
            return 0.0
        wsum = 0.0
        for i in active:
            wsum += self._weights[i]
        if HAS_NUMPY and len(active) >= _VECTOR_MIN_LANES:
            idx = np.asarray(active)
            d = np.frombuffer(self._delivered, dtype=np.int64)[idx]
            w = np.frombuffer(self._weights, dtype=np.float64)[idx]
            return float(np.abs(d / total - w / wsum).max())
        return max(
            abs(self._delivered[i] / total - self._weights[i] / wsum)
            for i in active
        )


class LinearScanFairShareQueue(FairShareQueue):
    """The pre-heap O(U log U) dispatch scan, kept as executable spec.

    Selection semantics are defined by this scan: minimum
    ``(band, vtime, head_seq)`` over every lane with an admissible head,
    lanes visited in sorted user order.  The differential property test
    drives it against :class:`FairShareQueue` across random operation
    interleavings; any divergence in pop sequence is a bug in the heap
    index, never in this reference.
    """

    def pop_next(
        self, admissible: Callable[[ScheduledTask], bool] | None = None
    ) -> ScheduledTask | None:
        """Dispatch the next task by scanning every lane (the spec)."""
        best: tuple[int, float, int] | None = None
        best_i = -1
        for user in sorted(self._index):
            i = self._index[user]
            fifo = self._fifos[i]
            if not fifo:
                continue
            head = fifo[0]
            if admissible is not None and not admissible(head):
                continue
            key = (-head.priority, self._vtimes[i], head.seq)
            if best is None or key < best:
                best = key
                best_i = i
        if best_i < 0:
            return None
        task = self._fifos[best_i].popleft()
        self._depth -= 1
        task.state = TaskState.CLAIMED
        if self._vtimes[best_i] > self._global_vtime:
            self._global_vtime = self._vtimes[best_i]
        self._reindex(best_i)
        return task


def jain_index(values: Iterator[float] | list[float]) -> float:
    """Jain's fairness index over per-user allocations (1.0 = perfectly fair).

    ``(Σx)² / (n·Σx²)`` — the standard fleet-fairness summary the
    scheduler benchmark reports over delivered bytes per user.
    """
    xs = [float(v) for v in values]
    if not xs:
        return 1.0
    square_of_sum = sum(xs) ** 2
    sum_of_squares = sum(x * x for x in xs)
    if sum_of_squares == 0:
        return 1.0
    return square_of_sum / (len(xs) * sum_of_squares)
