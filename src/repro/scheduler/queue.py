"""The fleet task queue: weighted fair-share over *bytes*, FIFO ties.

The hosted service of paper Section VI mediates transfers for many
users at once; what keeps one user's million-file campaign from
starving everyone else is this queue.  It implements start-time fair
queuing (a stride/virtual-time discipline) over **delivered bytes**,
not job counts: every user carries a virtual time, dispatch always
picks the lowest-virtual-time user with a runnable task, and finishing
a task advances that user's virtual time by ``bytes / weight``.  Heavy
users therefore fall behind in virtual time and light users catch up —
byte shares converge to the weight vector regardless of task sizes.

Determinism: selection is ``min()`` over ``(band, vtime, head_seq)``
where ``seq`` is the global submission counter, so ordering is
seed-stable and independent of dict enumeration order.  Priority bands
dispatch strictly before lower bands; fair-share applies within a band.

Selection is O(log U) in the number of users: lane heads are indexed in
a lazy min-heap keyed by ``(band, vtime, head_seq)``.  Every operation
that can change a lane's dispatch key (push to an idle lane, requeue,
charge, head pop) bumps the lane's version and pushes a fresh heap
entry; stale entries are discarded when they surface.  The pre-heap
linear scan survives as :class:`LinearScanFairShareQueue` — the
executable specification the differential property test replays against.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator


class TaskState(enum.Enum):
    """Lifecycle of a queued task."""

    QUEUED = "queued"
    CLAIMED = "claimed"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


@dataclass
class ScheduledTask:
    """One unit of work the fleet scheduler dispatches.

    ``execute`` runs the work inline in virtual time and returns an
    arbitrary result; the queue itself never calls it — workers do.
    ``size_hint`` feeds admission budgets and the fair-share charge
    until the actual delivered byte count is known.
    """

    task_id: str
    user: str
    src_endpoint: str
    dst_endpoint: str
    size_hint: int
    execute: Callable[[], Any]
    priority: int = 0
    submitted_at: float = 0.0
    claimed_at: float = 0.0
    seq: int = 0
    attempts: int = 0
    state: TaskState = TaskState.QUEUED
    job_id: str = ""
    delivered_bytes: int = 0
    error: str = ""
    #: trace id of the submit span — the task's primary trace, carried on
    #: every scheduler event and used as the histogram exemplar
    trace_id: str = ""
    #: sub-threshold tasks may fold into a batch unless this is False
    coalesce: bool = True
    #: callbacks the owning service uses to reflect state onto its jobs
    on_claim: Callable[["ScheduledTask"], None] | None = None
    on_requeue: Callable[["ScheduledTask"], None] | None = None
    #: extracts actual delivered bytes from ``execute``'s result; the
    #: fair-share charge falls back to ``size_hint`` without one
    measure: Callable[[Any], int] | None = None

    @property
    def endpoints(self) -> tuple[str, str]:
        """The (source, destination) endpoint pair the task occupies."""
        return (self.src_endpoint, self.dst_endpoint)


@dataclass
class _UserLane:
    """Per-user FIFO plus fair-share accounting.

    ``version`` invalidates heap entries: every change to the lane's
    dispatch key bumps it, so any older entry that surfaces from the
    heap is recognizably stale and dropped.
    """

    weight: float = 1.0
    vtime: float = 0.0
    fifo: deque = field(default_factory=deque)
    delivered_bytes: int = 0
    version: int = 0


class FairShareQueue:
    """Byte-weighted fair queuing across users with FIFO tie-breaks.

    Dispatch is O(log U): runnable lanes are indexed by a lazy min-heap
    of ``((band, vtime, head_seq), version, user)`` entries.
    """

    def __init__(self) -> None:
        self._lanes: dict[str, _UserLane] = {}
        self._seq = itertools.count(1)
        self._global_vtime = 0.0
        self._depth = 0
        #: lazy heap of (dispatch key, lane version, user) over lane heads
        self._heap: list[tuple[tuple[int, float, int], int, str]] = []

    def _reindex(self, user: str, lane: _UserLane) -> None:
        """The lane's dispatch key changed: invalidate and re-push."""
        lane.version += 1
        if lane.fifo:
            head = lane.fifo[0]
            heapq.heappush(
                self._heap,
                ((-head.priority, lane.vtime, head.seq), lane.version, user),
            )

    # -- weights ----------------------------------------------------------

    def set_weight(self, user: str, weight: float) -> None:
        """Assign a fair-share weight (default 1.0; must be positive)."""
        if weight <= 0:
            raise ValueError(f"fair-share weight must be positive (got {weight})")
        lane = self._lane(user)
        lane.weight = float(weight)
        self._reindex(user, lane)

    def weight(self, user: str) -> float:
        """The user's fair-share weight."""
        lane = self._lanes.get(user)
        return lane.weight if lane is not None else 1.0

    def _lane(self, user: str) -> _UserLane:
        lane = self._lanes.get(user)
        if lane is None:
            lane = self._lanes[user] = _UserLane()
        return lane

    # -- queue operations -------------------------------------------------

    def __len__(self) -> int:
        return self._depth

    def depth_for(self, user: str) -> int:
        """Queued tasks currently held for one user."""
        lane = self._lanes.get(user)
        return len(lane.fifo) if lane is not None else 0

    def lane_count(self) -> int:
        """Users with any lane state (active or historical)."""
        return len(self._lanes)

    def push(self, task: ScheduledTask) -> ScheduledTask:
        """Enqueue a task (stamps its FIFO sequence number).

        A user idle at push time re-enters at the current global virtual
        time — an idle period earns no retroactive credit, which is what
        keeps a returning user from locking out everyone who kept
        working (the standard start-time fair queuing rule).
        """
        lane = self._lane(task.user)
        was_idle = not lane.fifo
        if was_idle:
            lane.vtime = max(lane.vtime, self._global_vtime)
        task.seq = next(self._seq)
        task.state = TaskState.QUEUED
        lane.fifo.append(task)
        self._depth += 1
        if was_idle:  # a tail append behind an existing head changes no key
            self._reindex(task.user, lane)
        return task

    def requeue(self, task: ScheduledTask) -> ScheduledTask:
        """Return a lapsed claim to the queue with its attempt count kept.

        The task goes to the *front* of its user's FIFO: it already won a
        dispatch slot once, so a crashed worker must not cost the user
        their place behind later submissions.
        """
        lane = self._lane(task.user)
        if not lane.fifo:
            lane.vtime = max(lane.vtime, self._global_vtime)
        task.state = TaskState.QUEUED
        lane.fifo.appendleft(task)
        self._depth += 1
        self._reindex(task.user, lane)
        return task

    def pop_next(
        self, admissible: Callable[[ScheduledTask], bool] | None = None
    ) -> ScheduledTask | None:
        """Dispatch the next task, honouring bands, fairness, and FIFO.

        ``admissible`` is the backpressure hook: a lane whose head fails
        the check is skipped this round (the task stays queued and keeps
        its position).  Returns None when nothing is runnable.

        The winner is the minimum ``(band, vtime, head_seq)`` over lanes
        with an admissible head — popped from the lazy heap in O(log U),
        discarding stale entries and setting inadmissible lanes aside
        (their entries are still current, so they go straight back).
        """
        heap = self._heap
        skipped: list[tuple[tuple[int, float, int], int, str]] = []
        best_user: str | None = None
        while heap:
            _key, version, user = heap[0]
            lane = self._lanes[user]
            if version != lane.version or not lane.fifo:
                heapq.heappop(heap)  # stale: the lane was re-keyed or emptied
                continue
            if admissible is not None and not admissible(lane.fifo[0]):
                skipped.append(heapq.heappop(heap))
                continue
            heapq.heappop(heap)
            best_user = user
            break
        for entry in skipped:
            heapq.heappush(heap, entry)
        if best_user is None:
            return None
        lane = self._lanes[best_user]
        task = lane.fifo.popleft()
        self._depth -= 1
        task.state = TaskState.CLAIMED
        self._global_vtime = max(self._global_vtime, lane.vtime)
        self._reindex(best_user, lane)
        return task

    def charge(self, user: str, nbytes: int) -> None:
        """Advance a user's virtual time by ``nbytes / weight``.

        Called on task completion with the *actual* delivered bytes, so
        fair-share converges on real byte shares even when size hints
        were wrong.
        """
        lane = self._lane(user)
        lane.vtime += nbytes / lane.weight
        lane.delivered_bytes += nbytes
        self._reindex(user, lane)
        if self._depth == 0:
            # end of a busy period: global virtual time catches up to the
            # largest finish tag served (the SFQ idle-transition rule), so
            # a user who worked alone carries no debt into the next burst.
            self._global_vtime = max(self._global_vtime, lane.vtime)

    # -- introspection ----------------------------------------------------

    @property
    def global_vtime(self) -> float:
        """The queue-wide virtual time (max finish tag served so far)."""
        return self._global_vtime

    def lane_vtime(self, user: str) -> float:
        """The virtual start tag a task pushed for ``user`` would carry.

        An idle lane re-enters at the global virtual time, so this is
        ``max(lane.vtime, global_vtime)`` — the number the flight
        recorder stamps on the submit event.
        """
        lane = self._lanes.get(user)
        if lane is None or not lane.fifo:
            base = lane.vtime if lane is not None else 0.0
            return max(base, self._global_vtime)
        return lane.vtime

    def lane_stats(self) -> list[dict[str, Any]]:
        """Per-user lane state (weight, vtime tag, depth, delivered bytes)."""
        out = []
        for user in sorted(self._lanes):
            lane = self._lanes[user]
            out.append({
                "user": user,
                "weight": lane.weight,
                "vtime": self.lane_vtime(user),
                "depth": len(lane.fifo),
                "delivered_bytes": lane.delivered_bytes,
                "head_seq": lane.fifo[0].seq if lane.fifo else None,
            })
        return out

    def tasks(self) -> Iterator[ScheduledTask]:
        """Every queued task, in deterministic (user, FIFO) order."""
        for user in sorted(self._lanes):
            yield from self._lanes[user].fifo

    def delivered_bytes(self) -> dict[str, int]:
        """Bytes charged per user so far (the fairness evidence)."""
        return {
            user: lane.delivered_bytes
            for user, lane in sorted(self._lanes.items())
            if lane.delivered_bytes
        }

    def fair_share_error(self) -> float:
        """Max absolute deviation between byte shares and weight shares.

        0.0 is perfect weighted fairness; only users that have received
        bytes (or hold queued work) participate.
        """
        delivered = {
            user: lane.delivered_bytes for user, lane in self._lanes.items()
            if lane.delivered_bytes or lane.fifo
        }
        total = sum(delivered.values())
        if total <= 0:
            return 0.0
        weights = {user: self._lanes[user].weight for user in delivered}
        wsum = sum(weights.values())
        return max(
            abs(delivered[user] / total - weights[user] / wsum)
            for user in delivered
        )


class LinearScanFairShareQueue(FairShareQueue):
    """The pre-heap O(U log U) dispatch scan, kept as executable spec.

    Selection semantics are defined by this scan: minimum
    ``(band, vtime, head_seq)`` over every lane with an admissible head,
    lanes visited in sorted user order.  The differential property test
    drives it against :class:`FairShareQueue` across random operation
    interleavings; any divergence in pop sequence is a bug in the heap
    index, never in this reference.
    """

    def pop_next(
        self, admissible: Callable[[ScheduledTask], bool] | None = None
    ) -> ScheduledTask | None:
        """Dispatch the next task by scanning every lane (the spec)."""
        best: tuple[int, float, int] | None = None
        best_user: str | None = None
        for user in sorted(self._lanes):
            lane = self._lanes[user]
            if not lane.fifo:
                continue
            head = lane.fifo[0]
            if admissible is not None and not admissible(head):
                continue
            key = (-head.priority, lane.vtime, head.seq)
            if best is None or key < best:
                best = key
                best_user = user
        if best_user is None:
            return None
        lane = self._lanes[best_user]
        task = lane.fifo.popleft()
        self._depth -= 1
        task.state = TaskState.CLAIMED
        self._global_vtime = max(self._global_vtime, lane.vtime)
        self._reindex(best_user, lane)
        return task


def jain_index(values: Iterator[float] | list[float]) -> float:
    """Jain's fairness index over per-user allocations (1.0 = perfectly fair).

    ``(Σx)² / (n·Σx²)`` — the standard fleet-fairness summary the
    scheduler benchmark reports over delivered bytes per user.
    """
    xs = [float(v) for v in values]
    if not xs:
        return 1.0
    square_of_sum = sum(xs) ** 2
    sum_of_squares = sum(x * x for x in xs)
    if sum_of_squares == 0:
        return 1.0
    return square_of_sum / (len(xs) * sum_of_squares)
