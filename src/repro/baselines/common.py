"""Shared pieces for the baseline tools."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TransferFaultError
from repro.net.topology import PathStats
from repro.sim.world import World
from repro.util.ranges import ByteRangeSet


@dataclass(frozen=True)
class BaselineResult:
    """Outcome of a baseline tool run."""

    tool: str
    nbytes: int
    start_time: float
    end_time: float
    restarted_from_zero: int = 0  # how many times progress was discarded
    wasted_bytes: int = 0  # bytes re-sent because of restarts

    @property
    def duration_s(self) -> float:
        """Elapsed virtual seconds."""
        return self.end_time - self.start_time

    @property
    def rate_bps(self) -> float:
        """Effective payload rate in bits per second."""
        if self.duration_s <= 0:
            return 0.0
        return self.nbytes * 8.0 / self.duration_s


def run_flow_with_faults(
    world: World,
    path: PathStats,
    nbytes: int,
    rate_bps: float,
    setup_s: float,
    resume_offset: int = 0,
) -> tuple[int, float | None]:
    """Advance time for a single-flow transfer, honouring the fault plan.

    Returns (bytes_delivered_beyond_resume_offset, fault_time_or_None).
    Caller decides what a fault means (restart from zero, resume, give
    up).  The clock ends at completion or at the fault.
    """
    start_window = world.now
    world.advance(setup_s)
    payload_start = world.now
    remaining = nbytes - resume_offset
    payload_s = remaining * 8.0 / rate_bps if rate_bps > 0 else float("inf")
    end = payload_start + payload_s
    fault_at = world.faults.first_interruption(
        path.link_ids, path.hosts, start_window, end
    )
    if fault_at is None:
        world.advance(payload_s)
        return remaining, None
    delivered = 0
    if fault_at > payload_start:
        delivered = int(rate_bps / 8.0 * (fault_at - payload_start))
    world.advance_to(max(fault_at, world.now))
    return delivered, fault_at


def wait_until_clear(world: World, path: PathStats, poll_s: float = 5.0) -> None:
    """Advance the clock until the path is up again (user retry behaviour)."""
    clear = world.faults.next_clear_time(path.link_ids, path.hosts, world.now)
    if clear > world.now:
        world.advance_to(clear)
    world.advance(poll_s)  # the human (or cron job) notices and retries


class RestartFromZeroError(TransferFaultError):
    """A tool without restart support lost all progress."""


__all__ = [
    "BaselineResult",
    "run_flow_with_faults",
    "wait_until_clear",
    "RestartFromZeroError",
    "ByteRangeSet",
]
