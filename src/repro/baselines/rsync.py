"""rsync (over SSH).

Section VII: "Tools such as SCP and rsync are ubiquitously available and
easy to use, but they provide only modest performance and no fault
recovery ... HTTP and rsync do not support third-party transfers."

Modelled: delta transfer (only bytes the destination lacks move —
rsync's genuine advantage for *re*-transfers, which the reliability
bench credits fairly), single SSH-capped stream, checksum scan cost
proportional to the data already at the destination, no third-party
mode (calling it raises).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.common import BaselineResult, run_flow_with_faults, wait_until_clear
from repro.errors import TransferError
from repro.net.tcp import TCPModel, tcp_stream_rate
from repro.sim.world import World
from repro.util.units import MB, mbps


@dataclass
class RsyncTool:
    """An rsync client run from ``client_host``."""

    world: World
    client_host: str
    cipher_cap_bps: float = mbps(400)
    #: local checksum scan speed over existing destination bytes
    scan_Bps: float = 200 * MB
    handshake_rtts: float = 6.0
    tcp_model: TCPModel = TCPModel.untuned()
    max_retries: int = 20

    def sync(
        self,
        src_host: str,
        dst_host: str,
        nbytes: int,
        bytes_already_at_dest: int = 0,
    ) -> BaselineResult:
        """rsync one file; only the missing suffix moves.

        After a fault, rsync's own retry re-scans and continues from what
        landed — crude but real delta behaviour (--partial).
        """
        if src_host != self.client_host and dst_host != self.client_host:
            raise TransferError(
                "rsync does not support third-party transfers; run it on "
                "one of the endpoints"
            )
        world = self.world
        path = world.network.path(src_host, dst_host)
        rate = min(tcp_stream_rate(path, self.tcp_model), self.cipher_cap_bps)
        start = world.now
        have = min(bytes_already_at_dest, nbytes)
        attempt = 0
        while True:
            attempt += 1
            if attempt > self.max_retries:
                raise TransferError(f"rsync gave up after {self.max_retries} attempts")
            setup = self.handshake_rtts * path.rtt_s + have / self.scan_Bps
            delivered, fault = run_flow_with_faults(
                world, path, nbytes, rate, setup, resume_offset=have
            )
            have += delivered
            if fault is None:
                break
            wait_until_clear(world, path)
        result = BaselineResult(
            tool="rsync",
            nbytes=nbytes - min(bytes_already_at_dest, nbytes),
            start_time=start,
            end_time=world.now,
        )
        world.emit("baseline.rsync", "rsync done", nbytes=result.nbytes,
                   duration=result.duration_s, rate_bps=result.rate_bps)
        return result

    def estimated_rate_bps(self, src_host: str, dst_host: str) -> float:
        """Steady-state rate estimate for this tool."""
        path = self.world.network.path(src_host, dst_host)
        return min(tcp_stream_rate(path, self.tcp_model), self.cipher_cap_bps)
