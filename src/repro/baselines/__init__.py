"""Baseline data-movement tools the paper compares against.

Section I/III/VII name them all: SCP ("routes data through the client
... low-bandwidth links"), legacy FTP ("poor performance and
reliability"), rsync and HTTP ("modest performance and no fault
recovery", "do not support third-party transfers"), and GridFTP-Lite
(SSH-authenticated GridFTP with three specific limitations).  Each
baseline runs on the same network model and fault plan as GridFTP, so
every comparison in the benchmarks is apples-to-apples.
"""

from repro.baselines.common import BaselineResult
from repro.baselines.scp import ScpTool
from repro.baselines.ftp_plain import PlainFtpTool
from repro.baselines.rsync import RsyncTool
from repro.baselines.http import HttpTool
from repro.baselines.gridftp_lite import GridFTPLite, SshIdentity

__all__ = [
    "BaselineResult",
    "ScpTool",
    "PlainFtpTool",
    "RsyncTool",
    "HttpTool",
    "GridFTPLite",
    "SshIdentity",
]
