"""HTTP downloads.

"Legacy FTP, SFTP, and HTTP also suffer from low performance" (Section
VII); HTTP additionally "do[es] not support third-party transfers".
Modelled: a single TCP stream per GET, Range-request resume (what wget
-c does), no server-to-server mode.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.common import BaselineResult, run_flow_with_faults, wait_until_clear
from repro.errors import TransferError
from repro.net.tcp import TCPModel, tcp_stream_rate
from repro.sim.world import World


@dataclass
class HttpTool:
    """An HTTP client (wget/curl style) on ``client_host``."""

    world: World
    client_host: str
    tcp_model: TCPModel = TCPModel.untuned()
    request_rtts: float = 1.0  # GET after the TCP handshake
    max_retries: int = 20

    def download(
        self, server_host: str, nbytes: int, resume: bool = True
    ) -> BaselineResult:
        """GET a file; ``resume`` uses Range requests after faults."""
        world = self.world
        path = world.network.path(self.client_host, server_host)
        rate = tcp_stream_rate(path, self.tcp_model)
        setup = (self.tcp_model.handshake_rtts + self.request_rtts) * path.rtt_s
        start = world.now
        offset = 0
        restarted = 0
        wasted = 0
        attempt = 0
        while True:
            attempt += 1
            if attempt > self.max_retries:
                raise TransferError(f"http gave up after {self.max_retries} attempts")
            delivered, fault = run_flow_with_faults(
                world, path, nbytes, rate, setup, resume_offset=offset
            )
            if fault is None:
                break
            if resume:
                offset += delivered
            else:
                restarted += 1
                wasted += offset + delivered
                offset = 0
            wait_until_clear(world, path)
        result = BaselineResult(
            tool="http",
            nbytes=nbytes,
            start_time=start,
            end_time=world.now,
            restarted_from_zero=restarted,
            wasted_bytes=wasted,
        )
        world.emit("baseline.http", "http download done", nbytes=nbytes,
                   duration=result.duration_s, rate_bps=result.rate_bps)
        return result

    def third_party(self, *_args, **_kwargs):
        """HTTP has no third-party transfer; always raises."""
        raise TransferError("HTTP does not support third-party transfers")
