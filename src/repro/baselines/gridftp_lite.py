"""GridFTP-Lite: SSH-authenticated GridFTP (paper Section III.B.1).

"GridFTP-Lite uses SSH for user authentication.  Specifically, it uses
SSH to dynamically start a GridFTP server on a target machine and then
uses that SSH session to tunnel the GridFTP control channel."  It avoids
all X.509 setup, but with three limitations the paper enumerates — each
of which this implementation genuinely exhibits:

1. **the data channel has no security** — transfers always run DCAU N
   and PROT C; asking for more raises;
2. **SSH does not support delegation** — the session credential is
   marked ``no_delegation``, so handing the transfer off to Globus
   Online fails in :func:`repro.gsi.delegation.delegate_credential`;
3. **no security on the PI→DTP internal channel** of a striped server —
   striped deployments are created with ``internal_channel_secure=False``
   and their coordination messages are logged accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.auth.accounts import AccountDatabase, hash_password
from repro.errors import AuthenticationError, DCAUError
from repro.gridftp.dcau import DataChannelSecurity, DCAUMode
from repro.gridftp.mode_e import DEFAULT_BLOCK_SIZE
from repro.gridftp.transfer import (
    SinkSpec,
    SourceSpec,
    TransferEngine,
    TransferOptions,
    TransferResult,
)
from repro.pki.ca import self_signed_credential
from repro.pki.credential import Credential
from repro.pki.dn import DistinguishedName
from repro.pki.validation import TrustStore
from repro.sim.world import World
from repro.storage.dsi import DataStorageInterface
from repro.util.units import HOUR
from repro.xio.drivers import Protection


@dataclass
class SshIdentity:
    """One user's SSH access to a GridFTP-Lite host."""

    username: str
    password_hash: str
    salt: str

    def check(self, password: str) -> bool:
        """Verify a password against the stored hash."""
        return hash_password(password, self.salt) == self.password_hash


class GridFTPLite:
    """A host reachable via sshd that can spawn GridFTP on demand."""

    SSH_HANDSHAKE_RTTS = 6.0

    def __init__(
        self,
        world: World,
        host: str,
        accounts: AccountDatabase,
        dsi: DataStorageInterface,
        stripe_hosts: tuple[str, ...] = (),
        internal_channel_secure: bool = False,  # limitation 3
    ) -> None:
        world.network.host(host)
        self.world = world
        self.host = host
        self.accounts = accounts
        self.dsi = dsi
        self.stripe_hosts = stripe_hosts or (host,)
        self.internal_channel_secure = internal_channel_secure
        self._ssh_users: dict[str, SshIdentity] = {}

    def add_ssh_user(self, username: str, password: str) -> None:
        """Authorize SSH logins for an existing local account."""
        self.accounts.get(username)  # must exist
        salt = f"ssh:{self.host}:{username}"
        self._ssh_users[username] = SshIdentity(
            username=username,
            password_hash=hash_password(password, salt),
            salt=salt,
        )

    def ssh_login(self, client_host: str, username: str, password: str) -> "LiteSession":
        """SSH in; dynamically start GridFTP; tunnel the control channel."""
        world = self.world
        path = world.network.path(client_host, self.host)
        world.network.check_path_up(path)
        world.clock.advance(self.SSH_HANDSHAKE_RTTS * path.rtt_s)
        identity = self._ssh_users.get(username)
        if identity is None or not identity.check(password):
            raise AuthenticationError(f"ssh login failed for {username}@{self.host}")
        account = self.accounts.setuid(username)
        # the ephemeral session identity: self-signed, non-delegatable —
        # this is what "SSH does not support delegation" means here.
        session_cred = self_signed_credential(
            DistinguishedName.make(("O", "gridftp-lite"), ("CN", username)),
            world.clock,
            world.rng.python(f"lite:{self.host}:{username}"),
            lifetime=12 * HOUR,
            extensions={"no_delegation": True},
        )
        world.emit("gridftp_lite.login", "ssh session established",
                   host=self.host, username=username, client=client_host)
        return LiteSession(self, client_host, account.uid, username, session_cred)

    def internal_message(self, dtp_host: str, message: str) -> None:
        """PI→DTP coordination — logged with its (in)security flag."""
        self.world.emit(
            "gridftp.striped.internal",
            message,
            server=f"gridftp-lite@{self.host}",
            dtp=dtp_host,
            secure=self.internal_channel_secure,
        )


@dataclass
class LiteSession:
    """A live SSH-tunneled GridFTP-Lite session."""

    server: GridFTPLite
    client_host: str
    uid: int
    username: str
    credential: Credential  # non-delegatable

    @property
    def world(self) -> World:
        """The world this object lives in."""
        return self.server.world

    def _security(self) -> DataChannelSecurity:
        # limitation 1: the data channel has no security, full stop.
        return DataChannelSecurity(
            mode=DCAUMode.NONE,
            credential=None,
            trust=TrustStore(),
            endpoint_name=f"gridftp-lite@{self.server.host}",
        )

    def _check_options(self, options: TransferOptions) -> TransferOptions:
        if options.protection is not Protection.CLEAR:
            raise DCAUError(
                "GridFTP-Lite cannot protect the data channel "
                "(limitation 1, paper Section III.B)"
            )
        if options.dcau is not DCAUMode.NONE:
            # silently run DCAU N, as the real tool does
            options = options.with_(dcau=DCAUMode.NONE)
        return options

    def get(
        self,
        remote_path: str,
        local_storage: DataStorageInterface,
        local_path: str,
        options: TransferOptions | None = None,
    ) -> TransferResult:
        """Fetch a file over the SSH-started server."""
        options = self._check_options(options or TransferOptions())
        data = self.server.dsi.open_read(remote_path, self.uid)
        if len(self.server.stripe_hosts) > 1:
            for h in self.server.stripe_hosts:
                self.server.internal_message(h, f"serve {remote_path}")
        source = SourceSpec(
            hosts=self.server.stripe_hosts,
            data=data,
            security=self._security(),
        )
        sink = local_storage.open_write(local_path, 0, data.size)
        sink_spec = SinkSpec(
            hosts=(self.client_host,),
            sink=sink,
            security=DataChannelSecurity(
                mode=DCAUMode.NONE, credential=None, trust=TrustStore(),
                endpoint_name=f"lite-client@{self.client_host}",
            ),
        )
        engine = TransferEngine(self.world)
        result = engine.execute(source, sink_spec, options)
        self.world.emit("gridftp_lite.transfer", "transfer complete",
                        host=self.server.host, nbytes=result.nbytes,
                        dcau="N", protection="C")
        return result

    def delegate(self):
        """Hand our credential to a transfer agent — always fails.

        Limitation 2: "since SSH does not support delegation, users
        cannot hand off SSH-based GridFTP transfers to transfer agents
        such as Globus Online."
        """
        from repro.gsi.delegation import delegate_credential

        return delegate_credential(
            self.credential, self.world.clock, self.world.rng.python("lite-delegate")
        )


__all__ = ["GridFTPLite", "LiteSession", "SshIdentity", "DEFAULT_BLOCK_SIZE"]
