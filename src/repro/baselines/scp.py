"""SCP.

The paper's headline comparator: "GridFTP has been shown to deliver
multiple orders of magnitude higher throughput than do other data
transfer methods such as secure copy (SCP)."  The reasons, all modelled:

* one TCP stream with the era's default (small) windows — window/RTT
  bound on long paths;
* all payload through a single-core SSH cipher — a hard rate cap;
* no restart support: a failure loses everything ("require frequent
  user intervention");
* no third-party mode: remote→remote copies relay *through the client*
  ("SCP routes data through the client for transfers between two remote
  hosts"), typically over a slow access link.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.common import BaselineResult, run_flow_with_faults, wait_until_clear
from repro.errors import TransferError
from repro.net.tcp import TCPModel, tcp_stream_rate
from repro.sim.world import World
from repro.util.units import mbps


@dataclass
class ScpTool:
    """An scp client run from ``client_host``."""

    world: World
    client_host: str
    #: single-core cipher+MAC throughput cap (3des/aes-cbc era)
    cipher_cap_bps: float = mbps(400)
    #: ssh connection setup: TCP + key exchange + auth round trips
    handshake_rtts: float = 6.0
    tcp_model: TCPModel = TCPModel.untuned()
    max_retries: int = 20

    def _rate(self, path) -> float:
        return min(tcp_stream_rate(path, self.tcp_model), self.cipher_cap_bps)

    def copy(self, src_host: str, dst_host: str, nbytes: int) -> BaselineResult:
        """``scp src:file dst:file`` — relays via the client if remote-remote.

        On failure the user re-runs scp from scratch (no resume).
        """
        world = self.world
        start = world.now
        legs = self._legs(src_host, dst_host)
        restarted = 0
        wasted = 0
        for path in legs:
            rate = self._rate(path)
            setup = self.handshake_rtts * path.rtt_s
            attempt = 0
            while True:
                attempt += 1
                if attempt > self.max_retries:
                    raise TransferError(
                        f"scp gave up after {self.max_retries} attempts"
                    )
                delivered, fault = run_flow_with_faults(
                    world, path, nbytes, rate, setup
                )
                if fault is None:
                    break
                # no restart markers: everything re-sent from byte 0
                restarted += 1
                wasted += delivered
                wait_until_clear(world, path)
        result = BaselineResult(
            tool="scp",
            nbytes=nbytes,
            start_time=start,
            end_time=world.now,
            restarted_from_zero=restarted,
            wasted_bytes=wasted,
        )
        world.emit("baseline.scp", "scp copy done", nbytes=nbytes,
                   duration=result.duration_s, rate_bps=result.rate_bps,
                   restarts=restarted)
        return result

    def _legs(self, src_host: str, dst_host: str) -> list:
        """The network legs the data actually crosses."""
        net = self.world.network
        if src_host == self.client_host or dst_host == self.client_host:
            return [net.path(src_host, dst_host)]
        # remote -> remote: data flows src -> client -> dst, sequentially
        # (classic scp buffers through the invoking host).
        return [net.path(src_host, self.client_host), net.path(self.client_host, dst_host)]

    def estimated_rate_bps(self, src_host: str, dst_host: str) -> float:
        """Effective end-to-end rate (slowest leg for relayed copies)."""
        return min(self._rate(p) for p in self._legs(src_host, dst_host))
