"""Legacy FTP (RFC 959).

"Traditional methods such as FTP and SCP are ill-suited to data movement
on this scale because of their poor performance and reliability"
(Section I).  Modelled: one stream-mode TCP connection, untuned windows,
cleartext control channel (the password exposure is logged), stream-mode
REST (resume from a single offset — coarser than GridFTP's range
markers, and only if the user's client retries at all).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.common import BaselineResult, run_flow_with_faults, wait_until_clear
from repro.errors import TransferError
from repro.net.tcp import TCPModel, tcp_stream_rate
from repro.sim.world import World


@dataclass
class PlainFtpTool:
    """A legacy FTP client."""

    world: World
    client_host: str
    tcp_model: TCPModel = TCPModel.untuned()
    #: USER/PASS/TYPE/PASV/RETR command exchanges
    command_rtts: float = 5.0
    max_retries: int = 20

    def fetch(
        self,
        server_host: str,
        nbytes: int,
        username: str = "anonymous",
        password: str = "guest",
        use_rest: bool = False,
    ) -> BaselineResult:
        """RETR a file from ``server_host`` to the client.

        ``use_rest=True`` resumes from the received offset after faults
        (stream-mode REST); otherwise each failure starts over.
        """
        world = self.world
        path = world.network.path(self.client_host, server_host)
        world.emit(
            "credential.exposure", "password observed",
            party="network:cleartext", username=username, channel="ftp-control",
        )
        rate = tcp_stream_rate(path, self.tcp_model)
        setup = (self.tcp_model.handshake_rtts + self.command_rtts) * path.rtt_s
        start = world.now
        offset = 0
        restarted = 0
        wasted = 0
        attempt = 0
        while True:
            attempt += 1
            if attempt > self.max_retries:
                raise TransferError(f"ftp gave up after {self.max_retries} attempts")
            delivered, fault = run_flow_with_faults(
                world, path, nbytes, rate, setup, resume_offset=offset
            )
            if fault is None:
                break
            if use_rest:
                offset += delivered  # REST <offset> on retry
            else:
                restarted += 1
                wasted += offset + delivered
                offset = 0
            wait_until_clear(world, path)
        result = BaselineResult(
            tool="ftp",
            nbytes=nbytes,
            start_time=start,
            end_time=world.now,
            restarted_from_zero=restarted,
            wasted_bytes=wasted,
        )
        world.emit("baseline.ftp", "ftp fetch done", nbytes=nbytes,
                   duration=result.duration_s, rate_bps=result.rate_bps)
        return result

    def estimated_rate_bps(self, server_host: str) -> float:
        """Steady-state rate estimate for this tool."""
        path = self.world.network.path(self.client_host, server_host)
        return tcp_stream_rate(path, self.tcp_model)
