"""Exception hierarchy for the whole library.

Every subsystem raises subclasses of :class:`ReproError` so callers can
catch at whatever granularity they need.  Protocol-level failures carry the
FTP reply code where one exists, security failures carry the offending
subject, and transfer interruptions carry the byte ranges that did arrive so
that restart logic can resume from them.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


# ---------------------------------------------------------------------------
# Network / simulation
# ---------------------------------------------------------------------------


class NetworkError(ReproError):
    """A network-level failure (no route, port in use, link down)."""


class NoRouteError(NetworkError):
    """No path exists between two hosts."""


class PortInUseError(NetworkError):
    """Attempt to listen on a port that already has a listener."""


class ConnectionRefusedError_(NetworkError):
    """Nothing is listening at the requested host:port."""


class LinkDownError(NetworkError):
    """A link on the path is down (fault injection)."""

    def __init__(self, message: str, link: str | None = None) -> None:
        super().__init__(message)
        self.link = link


class ControlChannelDownError(LinkDownError):
    """The control plane of an endpoint is unreachable (chaos injection).

    Subclasses :class:`LinkDownError` so every existing recovery path
    that waits out an outage treats a control disconnect the same way.
    """


class CircuitOpenError(ReproError):
    """A circuit breaker is refusing calls to a repeatedly failing endpoint.

    ``retry_after_s`` is how long (virtual seconds) until the breaker
    moves to half-open and will admit a trial call.
    """

    def __init__(self, message: str, endpoint: str | None = None,
                 retry_after_s: float = 0.0) -> None:
        super().__init__(message)
        self.endpoint = endpoint
        self.retry_after_s = retry_after_s


# ---------------------------------------------------------------------------
# PKI / GSI security
# ---------------------------------------------------------------------------


class SecurityError(ReproError):
    """Base class for security failures."""


class CertificateError(SecurityError):
    """A certificate is malformed, expired, or fails signature checks."""


class UntrustedIssuerError(CertificateError):
    """Chain validation could not reach a trusted root.

    This is the precise failure mode of Figure 4 in the paper: endpoint B
    receives a certificate issued by CA-A, which is not among B's trust
    roots.
    """

    def __init__(self, message: str, issuer: str | None = None) -> None:
        super().__init__(message)
        self.issuer = issuer


class SigningPolicyError(CertificateError):
    """A CA signed a subject outside its permitted namespace."""


class AuthenticationError(SecurityError):
    """Identity could not be established (bad password, bad handshake)."""


class AuthorizationError(SecurityError):
    """Identity established but the action is not permitted."""


class GridmapError(AuthorizationError):
    """No gridmap entry maps the presented subject to a local account."""

    def __init__(self, message: str, subject: str | None = None) -> None:
        super().__init__(message)
        self.subject = subject


class DelegationError(SecurityError):
    """Credential delegation failed or is unsupported (e.g. SSH auth)."""


class ActivationExpiredError(AuthenticationError):
    """An endpoint activation expired between submission and execution.

    Raised at *execution* time (post-queue) so a job that sat in the
    scheduler long enough for its short-term credential to lapse surfaces
    as "re-activate this endpoint", never as a transfer attempt with a
    stale credential.  ``expired_at`` is when the credential lapsed.
    """

    def __init__(self, message: str, endpoint: str | None = None,
                 expired_at: float | None = None) -> None:
        super().__init__(message)
        self.endpoint = endpoint
        self.expired_at = expired_at


# ---------------------------------------------------------------------------
# Fleet scheduler
# ---------------------------------------------------------------------------


class SchedulerError(ReproError):
    """Base class for fleet-scheduler failures."""


class AdmissionError(SchedulerError):
    """A task was refused at the queue door (backpressure).

    ``retry_after_s`` is the scheduler's estimate of when resubmission
    has a fair chance of being admitted (virtual seconds from now).
    """

    def __init__(self, message: str, retry_after_s: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class QueueFullError(AdmissionError):
    """The bounded task queue is at capacity; resubmit after the hint."""


class QuotaExceededError(AdmissionError):
    """A per-user queued-task quota is exhausted.

    ``user`` names the account whose quota tripped.
    """

    def __init__(self, message: str, user: str | None = None,
                 retry_after_s: float = 0.0) -> None:
        super().__init__(message, retry_after_s=retry_after_s)
        self.user = user


class LeaseLostError(SchedulerError):
    """A worker tried to act on a claim whose lease already lapsed."""


# ---------------------------------------------------------------------------
# Archival pipeline
# ---------------------------------------------------------------------------


class ArchiveError(ReproError):
    """An archival-pipeline failure (catalog misuse, quorum violation)."""


class IllegalTransitionError(ArchiveError):
    """A component tried a bundle/request status change the state machine forbids."""


# ---------------------------------------------------------------------------
# PAM / local accounts
# ---------------------------------------------------------------------------


class PamError(ReproError):
    """A PAM stack failure."""


class UnknownUserError(PamError):
    """The username does not exist in any account database."""


class AccountLockedError(PamError):
    """The account exists but is administratively disabled."""


# ---------------------------------------------------------------------------
# Storage
# ---------------------------------------------------------------------------


class StorageError(ReproError):
    """Base class for DSI/storage failures."""


class FileNotFoundStorageError(StorageError):
    """The path does not exist."""


class PermissionDeniedError(StorageError):
    """The requesting uid lacks permission on the path."""


class IsADirectoryStorageError(StorageError):
    """A file operation was attempted on a directory."""


class NotADirectoryStorageError(StorageError):
    """A directory operation was attempted on a file."""


class FileExistsStorageError(StorageError):
    """Exclusive creation hit an existing path."""


# ---------------------------------------------------------------------------
# Protocol / transfer
# ---------------------------------------------------------------------------


class ProtocolError(ReproError):
    """A control-channel protocol violation.

    ``code`` is the FTP reply code the server answered with (or would
    answer with), e.g. 500 for unrecognized commands, 530 for not logged
    in, 550 for file unavailable.
    """

    def __init__(self, message: str, code: int = 500) -> None:
        super().__init__(message)
        self.code = code


class TransferError(ReproError):
    """A data transfer failed outright."""


class TransferFaultError(TransferError):
    """A transfer was interrupted part-way by an injected fault.

    ``received`` is the :class:`repro.gridftp.restart.ByteRangeSet` of data
    that did arrive before the interruption; restart logic resumes from its
    complement.
    """

    def __init__(self, message: str, received=None, at_time: float = 0.0) -> None:
        super().__init__(message)
        self.received = received
        self.at_time = at_time


class DCAUError(SecurityError):
    """Data channel authentication failed (Figure 4 scenario)."""


class UnsupportedCommandError(ProtocolError):
    """Server does not implement the command (e.g. legacy server + DCSC)."""

    def __init__(self, message: str) -> None:
        super().__init__(message, code=500)
