"""MyProxy logon protocol messages.

The real protocol runs over TLS with its own framing; we keep the
message *content* faithful — username, passphrase, requested lifetime in,
signed certificate (or error) out — encoded as single text lines so it
rides the same :class:`~repro.net.channel.ControlChannel` machinery as
everything else.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProtocolError
from repro.util.encoding import b64decode_str, b64encode_str


@dataclass(frozen=True)
class LogonRequest:
    """A myproxy-logon request."""

    username: str
    passphrase: str
    lifetime_s: float

    def encode(self) -> str:
        """Render as the single-line wire form."""
        user_b64 = b64encode_str(self.username.encode("utf-8"))
        pass_b64 = b64encode_str(self.passphrase.encode("utf-8"))
        return f"LOGON {user_b64} {pass_b64} {self.lifetime_s:.0f}"

    @staticmethod
    def decode(line: str) -> "LogonRequest":
        """Parse the single-line wire form."""
        parts = line.split()
        if len(parts) != 4 or parts[0] != "LOGON":
            raise ProtocolError(f"malformed myproxy logon line: {line!r}", code=501)
        try:
            return LogonRequest(
                username=b64decode_str(parts[1]).decode("utf-8"),
                passphrase=b64decode_str(parts[2]).decode("utf-8"),
                lifetime_s=float(parts[3]),
            )
        except (ValueError, UnicodeDecodeError) as exc:
            raise ProtocolError(f"malformed myproxy logon fields: {exc}", code=501) from exc


@dataclass(frozen=True)
class LogonResponse:
    """The server's answer: a credential PEM or an error."""

    ok: bool
    credential_pem: str = ""
    error: str = ""

    def encode(self) -> str:
        """Render as the single-line wire form."""
        if self.ok:
            return f"OK {b64encode_str(self.credential_pem.encode('ascii'))}"
        return f"ERR {b64encode_str(self.error.encode('utf-8'))}"

    @staticmethod
    def decode(line: str) -> "LogonResponse":
        """Parse the single-line wire form."""
        tag, _, body = line.partition(" ")
        if tag == "OK":
            return LogonResponse(ok=True, credential_pem=b64decode_str(body).decode("ascii"))
        if tag == "ERR":
            return LogonResponse(ok=False, error=b64decode_str(body).decode("utf-8"))
        raise ProtocolError(f"malformed myproxy response: {line!r}", code=501)
