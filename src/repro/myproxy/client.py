"""The ``myproxy-logon`` client.

Paper Section IV.E: "the client runs a command to get a short-term
credential from the MyProxy CA on the server:
``myproxy-logon -b -T -s <server-name>`` ... This credential is used to
authenticate with the GridFTP server when moving data."

The ``-b``/``-T`` behaviour (bootstrap trust) is also modelled: on first
contact the client fetches the site CA certificate into its trust store,
which is what frees GCMU users from ever editing trusted-certificate
directories.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import (
    AuthenticationError,
    ConnectionRefusedError_,
    LinkDownError,
    ProtocolError,
)
from repro.myproxy.protocol import LogonRequest, LogonResponse
from repro.myproxy.server import MyProxyOnlineCA
from repro.net.channel import ControlChannel
from repro.pki.credential import Credential
from repro.pki.validation import TrustStore
from repro.recovery import RetryPolicy
from repro.recovery.engine import RecoveryEngine

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.world import World


def myproxy_logon(
    world: "World",
    client_host: str,
    server: MyProxyOnlineCA | tuple[str, int],
    username: str,
    passphrase: str,
    lifetime_s: float | None = None,
    trust: TrustStore | None = None,
    bootstrap_trust: bool = True,
    retry: RetryPolicy | None = None,
) -> Credential:
    """Obtain a short-lived credential from a site's MyProxy Online CA.

    Returns the issued credential.  When ``trust`` is given and
    ``bootstrap_trust`` is true, the site CA's certificate is added to it
    (myproxy-logon's ``-b`` flag), so the caller can immediately validate
    GridFTP servers at that site.

    Pass a ``retry`` policy to survive transient connectivity failures
    (link flaps, server restarts); by default one failure is fatal.

    Raises :class:`AuthenticationError` when the site rejects the
    username/passphrase.
    """
    address = server.address if isinstance(server, MyProxyOnlineCA) else server

    def logon_once() -> Credential:
        channel = ControlChannel(world.network, client_host, address)
        try:
            request = LogonRequest(
                username=username,
                passphrase=passphrase,
                lifetime_s=lifetime_s if lifetime_s is not None else MyProxyOnlineCA.DEFAULT_LIFETIME,
            )
            lines = channel.request(request.encode())
            if not lines:
                raise ProtocolError("empty myproxy response")
            response = LogonResponse.decode(lines[0])
            if not response.ok:
                raise AuthenticationError(f"myproxy-logon failed: {response.error}")
            return Credential.from_pem(response.credential_pem)
        finally:
            channel.close()

    if retry is None:
        credential = logon_once()
    else:
        engine = RecoveryEngine(
            world, policy=retry, component="myproxy",
            loop_span_name="myproxy.retry", attempt_span_name="attempt",
        )
        credential = engine.run(
            lambda _att: logon_once(),
            retry_on=(LinkDownError, ConnectionRefusedError_),
            describe="myproxy-logon",
        ).result
    if trust is not None and bootstrap_trust:
        # the chain's root is the site CA; trust it (-b bootstrap)
        trust.add_anchor(credential.chain[-1])
    world.emit(
        "myproxy.logon",
        "client obtained short-lived credential",
        client=client_host,
        username=username,
        subject=str(credential.subject),
    )
    return credential
