"""MyProxy Online Certificate Authority.

"MyProxy Online CA ... can be run at a site and tied to the local
identity domain via a PAM.  It issues short-lived X.509 credentials to
authenticated users, which can then be used to authenticate with the
GridFTP server" (paper Section IV.A).  The server here does exactly
that: PAM-verified username/password (or OTP) in, short-lived
certificate with the local username embedded in its DN out.
"""

from repro.myproxy.protocol import LogonRequest, LogonResponse
from repro.myproxy.server import MyProxyOnlineCA
from repro.myproxy.client import myproxy_logon

__all__ = ["LogonRequest", "LogonResponse", "MyProxyOnlineCA", "myproxy_logon"]
