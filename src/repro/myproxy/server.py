"""The MyProxy Online CA server.

Figure 3, steps 1-3: the user presents site username/password; the CA
passes them to the local authentication system via PAM; on success it
issues a short-lived X.509 certificate that "embeds the local username
in the distinguished name (DN) of the certificate, since this
certificate will be used to authenticate with this site only."

The CA's namespace is ``/O=GCMU/OU=<site>/CN=<username>``; its signing
policy restricts it to exactly that subtree, and the certificate carries
the ``issued_by_service`` extension so GCMU's authorization callout can
recognize locally-issued certificates (Section IV.C).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.auth.pam import PamStack
from repro.errors import PamError
from repro.myproxy.protocol import LogonRequest, LogonResponse
from repro.net.sockets import Listener, ServerSession, Service, listen, close_listener
from repro.pki.ca import CertificateAuthority
from repro.pki.credential import Credential
from repro.pki.dn import DistinguishedName
from repro.pki.policy import SigningPolicy
from repro.util.units import HOUR

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.world import World


class MyProxyOnlineCA(Service):
    """A site's online CA, bound to its PAM stack."""

    DEFAULT_PORT = 7512
    #: short-lived, per the paper; a classic MyProxy default is 12 hours
    DEFAULT_LIFETIME = 12 * HOUR
    #: hard ceiling a client may request
    MAX_LIFETIME = 7 * 24 * HOUR

    def __init__(
        self,
        world: "World",
        host: str,
        site_name: str,
        pam: PamStack,
        port: int = DEFAULT_PORT,
        max_lifetime_s: float = MAX_LIFETIME,
    ) -> None:
        self.world = world
        self.host = host
        self.site_name = site_name
        self.pam = pam
        self.port = port
        self.max_lifetime_s = max_lifetime_s
        subject = DistinguishedName.make(("O", "GCMU"), ("OU", site_name), ("CN", "MyProxy CA"))
        namespace = DistinguishedName.make(("O", "GCMU"), ("OU", site_name))
        self.ca = CertificateAuthority(
            subject,
            world.clock,
            # host is part of the stream name so two same-named sites (two
            # boots of one appliance image) get independent CA keys
            rng=world.rng.python(f"myproxy:{site_name}:{host}"),
            policy=SigningPolicy.namespace(subject, namespace),
        )
        self.issued_count = 0
        self._listener: Listener | None = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "MyProxyOnlineCA":
        """Bind the listening port and begin serving."""
        self._listener = listen(self.world.network, self.host, self.port, self)
        self.world.emit("myproxy.start", "online CA listening",
                        site=self.site_name, address=f"{self.host}:{self.port}")
        return self

    def stop(self) -> None:
        """Release the listening port."""
        if self._listener is not None:
            close_listener(self.world.network, self._listener)
            self._listener = None

    @property
    def address(self) -> tuple[str, int]:
        """The (host, port) this service listens on."""
        return (self.host, self.port)

    def open_session(self, client_host: str) -> "MyProxySession":
        """Accept one connection (Service interface)."""
        return MyProxySession(self, client_host)

    # -- issuance ---------------------------------------------------------------

    def user_subject(self, username: str) -> DistinguishedName:
        """The DN this site issues for ``username`` (username in the CN)."""
        return DistinguishedName.make(
            ("O", "GCMU"), ("OU", self.site_name), ("CN", username)
        )

    def logon(self, username: str, passphrase: str, lifetime_s: float | None = None) -> Credential:
        """Authenticate via PAM and issue a short-lived credential.

        Raises :class:`~repro.errors.PamError` on authentication failure
        (with a deliberately generic message).
        """
        with self.world.tracer.span(
            "myproxy.logon", site=self.site_name, username=username
        ):
            self.pam.authenticate(username, passphrase)  # raises on failure
            lifetime = min(lifetime_s or self.DEFAULT_LIFETIME, self.max_lifetime_s)
            credential = self.ca.issue_credential(
                self.user_subject(username),
                lifetime=lifetime,
                extensions={
                    "issued_by_service": f"myproxy:{self.site_name}",
                    "local_username": username,
                },
            )
            self.issued_count += 1
            self.world.metrics.counter(
                "myproxy_certs_issued_total",
                "Short-lived certificates issued by online CAs",
                labelnames=("site",),
            ).inc(site=self.site_name)
            self.world.emit(
                "myproxy.issue",
                "short-lived credential issued",
                site=self.site_name,
                username=username,
                subject=str(credential.subject),
                lifetime_s=lifetime,
            )
            return credential


class MyProxySession(ServerSession):
    """One myproxy-logon connection."""

    #: PAM conversations and key generation are not free; charge a nominal
    #: server-side processing cost per logon.
    PROCESSING_TIME_S = 0.15

    def __init__(self, server: MyProxyOnlineCA, client_host: str) -> None:
        self.server = server
        self.client_host = client_host

    def handle(self, line: str) -> list[str]:
        """Process one request line (ServerSession interface)."""
        try:
            request = LogonRequest.decode(line)
        except Exception as exc:
            return [LogonResponse(ok=False, error=f"bad request: {exc}").encode()]
        self.server.world.clock.advance(self.PROCESSING_TIME_S)
        try:
            credential = self.server.logon(
                request.username, request.passphrase, request.lifetime_s
            )
        except PamError as exc:
            self.server.world.emit(
                "myproxy.deny", "logon denied",
                site=self.server.site_name, username=request.username,
            )
            return [LogonResponse(ok=False, error=str(exc)).encode()]
        return [LogonResponse(ok=True, credential_pem=credential.to_pem()).encode()]
