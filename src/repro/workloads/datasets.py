"""Dataset generators.

The paper says Globus GridFTP "is optimized to handle various types of
datasets from a single, huge file to datasets comprising lots of small
files" (Section II.A), and motivates with Earth System Grid (climate)
and LHC (high-energy physics) workloads.  These generators produce those
shapes deterministically: a list of :class:`FileSpec` (path, size,
content seed) plus a helper to materialize them into a storage backend.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.storage.data import LiteralData, SyntheticData
from repro.storage.dsi import DataStorageInterface
from repro.util.units import GB, KB, MB
from repro.util.vector import HAS_NUMPY, np

#: files at or below this size carry literal bytes (full integrity checks);
#: larger files are synthetic (see repro.storage.data)
LITERAL_THRESHOLD = 4 * MB


@dataclass(frozen=True)
class FileSpec:
    """One file of a workload."""

    path: str
    size: int
    seed: int

    def make_data(self):
        """Content object for this spec (literal below the threshold).

        Content bytes come from numpy's PCG64 when available, else from
        the stdlib generator — the backends yield *different* bytes, but
        each is deterministic per seed and every consumer compares
        source against sink within one run, never across backends.
        """
        if self.size <= LITERAL_THRESHOLD:
            if HAS_NUMPY:
                return LiteralData(np.random.default_rng(self.seed).bytes(self.size))
            return LiteralData(random.Random(self.seed).randbytes(self.size))
        return SyntheticData(seed=self.seed, length=self.size)


def single_huge_file(size: int = 100 * GB, directory: str = "/data", seed: int = 1) -> list[FileSpec]:
    """The bulk-transfer workload: one multi-gigabyte (or TB) file."""
    return [FileSpec(path=f"{directory}/huge.dat", size=size, seed=seed)]


def lots_of_small_files(
    count: int = 5000,
    size: int = 100 * KB,
    directory: str = "/data/small",
    seed: int = 2,
) -> list[FileSpec]:
    """The LOSF workload: many identically-small files."""
    return [
        FileSpec(path=f"{directory}/f{i:06d}.dat", size=size, seed=seed * 1_000_003 + i)
        for i in range(count)
    ]


def climate_mix(
    count: int = 200, directory: str = "/data/esg", seed: int = 3
) -> list[FileSpec]:
    """An Earth System Grid-ish mix: lognormal sizes around ~200 MB.

    ESG datasets (paper ref [12]) are dominated by mid-size NetCDF files
    with a long tail.
    """
    if HAS_NUMPY:
        rng = np.random.default_rng(seed)
        sizes = np.clip(
            rng.lognormal(mean=np.log(200 * MB), sigma=1.0, size=count), 1 * MB, 8 * GB
        ).astype(np.int64)
        sizes = [int(s) for s in sizes]
    else:
        pyrng = random.Random(seed)
        mu = math.log(200 * MB)
        sizes = [
            int(min(max(pyrng.lognormvariate(mu, 1.0), 1 * MB), 8 * GB))
            for _ in range(count)
        ]
    return [
        FileSpec(path=f"{directory}/cmip.{i:04d}.nc", size=s, seed=seed * 7_000_003 + i)
        for i, s in enumerate(sizes)
    ]


def hep_mix(count: int = 100, directory: str = "/data/lhc", seed: int = 4) -> list[FileSpec]:
    """An LHC-ish mix: ~2 GB event files with modest spread."""
    if HAS_NUMPY:
        rng = np.random.default_rng(seed)
        sizes = np.clip(
            rng.normal(loc=2 * GB, scale=512 * MB, size=count), 256 * MB, 8 * GB
        ).astype(np.int64)
        sizes = [int(s) for s in sizes]
    else:
        pyrng = random.Random(seed)
        sizes = [
            int(min(max(pyrng.gauss(2 * GB, 512 * MB), 256 * MB), 8 * GB))
            for _ in range(count)
        ]
    return [
        FileSpec(path=f"{directory}/run.{i:05d}.root", size=s, seed=seed * 9_000_017 + i)
        for i, s in enumerate(sizes)
    ]


def total_bytes(specs: list[FileSpec]) -> int:
    """Sum of file sizes."""
    return sum(s.size for s in specs)


def materialize(specs: list[FileSpec], storage: DataStorageInterface, uid: int = 0) -> None:
    """Create every file of a workload in a storage backend."""
    for spec in specs:
        write = getattr(storage, "write_file", None)
        if write is None:
            raise TypeError(f"backend {storage.name} lacks write_file")
        write(spec.path, spec.make_data(), uid=uid)
