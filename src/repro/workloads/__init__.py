"""Workload synthesis: dataset shapes and the worldwide-fleet generator."""

from repro.workloads.datasets import (
    FileSpec,
    single_huge_file,
    lots_of_small_files,
    climate_mix,
    hep_mix,
    materialize,
)
from repro.workloads.fleet import FleetModel, FleetDay

__all__ = [
    "FileSpec",
    "single_huge_file",
    "lots_of_small_files",
    "climate_mix",
    "hep_mix",
    "materialize",
    "FleetModel",
    "FleetDay",
]
