"""The worldwide GridFTP fleet (Figure 1's data source).

Section II.A: "The Globus GridFTP server is deployed on more than 5,000
servers worldwide and is responsible for an average of more than 10
million transfers totaling approximately half a petabyte of data every
day ... these numbers are based on reporting from GridFTP servers that
choose to enable reporting, presumably a subset of all servers."

:class:`FleetModel` grows a server fleet over a simulated multi-year
window and synthesizes each day's usage records from the *reporting*
subset, feeding them through the same usage pipeline a live server uses
(:mod:`repro.metrics.usage`).  The growth curve is logistic, calibrated
so the final year matches the paper's figures.

:class:`FleetTransferScenario` is the *wall-clock* counterpart: instead
of synthesizing usage records it actually drives the transfer engine at
fleet scale — thousands of small-file transfers between one endpoint
pair plus a multi-GiB striped transfer, under a dense scheduled-fault
plan — so ``benchmarks/bench_wallclock_fleet.py`` can measure how fast
the *simulator* itself runs the paper's workload.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.gridftp.dcau import DataChannelSecurity, DCAUMode
from repro.gridftp.mode_e import DEFAULT_BLOCK_SIZE
from repro.gridftp.transfer import (
    SinkSpec,
    SourceSpec,
    TransferEngine,
    TransferOptions,
    TransferResult,
)
from repro.pki.validation import TrustStore
from repro.sim.world import World
from repro.storage.data import LiteralData, SyntheticData
from repro.storage.posix import PosixStorage
from repro.util.units import DAY, GB, KB, PB, gbps
from repro.util.vector import HAS_NUMPY, np


class _GaussRng:
    """``standard_normal``-compatible fallback when numpy is absent.

    Draws come from :class:`random.Random` instead of numpy's PCG64, so
    the *values* differ between backends — the fleet model's consumers
    assert statistical properties, not exact streams — but each backend
    is individually deterministic for a given seed.
    """

    def __init__(self, seed: int) -> None:
        self._rng = random.Random(seed)

    def standard_normal(self) -> float:
        return self._rng.gauss(0.0, 1.0)


def _fleet_rng(seed: int):
    if HAS_NUMPY:
        return np.random.default_rng(seed)
    return _GaussRng(seed)


@dataclass(frozen=True)
class FleetDay:
    """Aggregate usage for one simulated day."""

    day_index: int
    servers_total: int
    servers_reporting: int
    transfers: int
    bytes_moved: int


class FleetModel:
    """Deterministic fleet growth + per-day usage synthesis."""

    def __init__(
        self,
        seed: int = 0,
        days: int = 4 * 365,
        final_servers: int = 5000,
        final_transfers_per_day: float = 10e6,
        final_bytes_per_day: float = 0.5 * PB,
        reporting_fraction: float = 0.6,
        midpoint_fraction: float = 0.55,
        growth_rate: float = 0.006,
    ) -> None:
        self.rng = _fleet_rng(seed)
        self.days = days
        self.final_servers = final_servers
        self.final_transfers_per_day = final_transfers_per_day
        self.final_bytes_per_day = final_bytes_per_day
        self.reporting_fraction = reporting_fraction
        self.midpoint = midpoint_fraction * days
        self.growth_rate = growth_rate

    def _logistic(self, day: int) -> float:
        """Adoption fraction in (0, 1] at ``day``."""
        raw = 1.0 / (1.0 + math.exp(-self.growth_rate * (day - self.midpoint)))
        end = 1.0 / (1.0 + math.exp(-self.growth_rate * (self.days - self.midpoint)))
        return float(raw / end)

    def day(self, day_index: int) -> FleetDay:
        """Synthesize one day of fleet-wide usage."""
        if not 0 <= day_index < self.days:
            raise ValueError(f"day {day_index} outside [0, {self.days})")
        adoption = self._logistic(day_index)
        servers = max(1, int(round(self.final_servers * adoption)))
        reporting = max(1, int(round(servers * self.reporting_fraction)))
        # day-to-day jitter: weekday dips, noisy science campaigns
        jitter = 1.0 + 0.15 * float(self.rng.standard_normal())
        weekly = 1.0 - 0.2 * (day_index % 7 >= 5)
        transfers = max(
            0, int(self.final_transfers_per_day * adoption * jitter * weekly)
        )
        mean_size = self.final_bytes_per_day / self.final_transfers_per_day
        bytes_moved = int(transfers * mean_size * (1.0 + 0.1 * float(self.rng.standard_normal())))
        return FleetDay(
            day_index=day_index,
            servers_total=servers,
            servers_reporting=reporting,
            transfers=transfers,
            bytes_moved=max(0, bytes_moved),
        )

    def series(self, step_days: int = 7) -> list[FleetDay]:
        """The sampled multi-year series (weekly by default)."""
        return [self.day(d) for d in range(0, self.days, step_days)]

    @staticmethod
    def day_to_time(day_index: int) -> float:
        """Virtual time (seconds) of a day index."""
        return day_index * DAY


# ---------------------------------------------------------------------------
# Wall-clock fleet scenario
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FleetWorkloadConfig:
    """Shape of one wall-clock fleet run.

    ``side_pairs``/``scheduled_faults`` build a realistic backdrop: a
    topology with many more hosts and links than the transfer touches,
    and a dense fault plan on those *side* links — exactly what a
    production fault schedule looks like from one transfer's point of
    view (almost everything scheduled is about somebody else).
    """

    seed: int = 7
    small_files: int = 10_000
    small_file_bytes: int = 64 * KB
    striped_bytes: int = 4 * GB
    stripes: int = 4
    side_pairs: int = 50
    scheduled_faults: int = 2_000
    block_size: int = DEFAULT_BLOCK_SIZE

    def quick(self) -> "FleetWorkloadConfig":
        """A CI-smoke-sized copy (same per-transfer cost, fewer of them)."""
        from dataclasses import replace

        return replace(self, small_files=1_000, striped_bytes=512 * 1024 * 1024)


@dataclass
class FleetRunStats:
    """What one phase of the scenario did (for the bench report)."""

    transfers: int = 0
    bytes_moved: int = 0
    blocks_planned: int = 0
    results: list[TransferResult] = field(default_factory=list)


def _blocks_for(size: int, block_size: int) -> int:
    """Mode E blocks a whole-file plan of ``size`` bytes produces."""
    return max(1, -(-size // block_size))


class FleetTransferScenario:
    """Drives the transfer engine the way a busy deployment does.

    One endpoint pair (``dtn-src`` → ``dtn-dst`` across two routers)
    moves every small file — fleets re-use routes — while ``stripes``
    stripe hosts on each side carry the multi-GiB striped transfer.
    ``scheduled_faults`` outages/degradations sit on side links the
    transfers never touch, so every run finishes clean but every fault
    query sees a production-sized plan.
    """

    def __init__(self, config: FleetWorkloadConfig | None = None) -> None:
        self.config = config or FleetWorkloadConfig()
        cfg = self.config
        self.world = World(seed=cfg.seed, event_capacity=4096, span_capacity=4096)
        net = self.world.network
        net.add_host("dtn-src", nic_bps=gbps(10))
        net.add_host("dtn-dst", nic_bps=gbps(10))
        net.add_router("core-a")
        net.add_router("core-b")
        net.add_link("dtn-src", "core-a", gbps(40), 0.001)
        net.add_link("core-a", "core-b", gbps(100), 0.02)
        net.add_link("core-b", "dtn-dst", gbps(40), 0.001)
        self.src_stripes = tuple(f"src-s{i}" for i in range(cfg.stripes))
        self.dst_stripes = tuple(f"dst-s{i}" for i in range(cfg.stripes))
        for h in self.src_stripes:
            net.add_host(h, nic_bps=gbps(10))
            net.add_link(h, "core-a", gbps(10), 0.001)
        for h in self.dst_stripes:
            net.add_host(h, nic_bps=gbps(10))
            net.add_link(h, "core-b", gbps(10), 0.001)
        # the backdrop: side links whose faults this scenario never hits
        side_links = []
        for i in range(cfg.side_pairs):
            a, b = f"fleet-h{i}a", f"fleet-h{i}b"
            net.add_host(a)
            net.add_host(b)
            side_links.append(net.add_link(a, b, gbps(1), 0.01).link_id)
        rng = random.Random(cfg.seed)
        for i in range(cfg.scheduled_faults):
            link = side_links[i % len(side_links)]
            at = rng.uniform(0.0, 50_000.0)
            if i % 3 == 0:
                self.world.faults.degrade_link(
                    link, at=at, duration=rng.uniform(5.0, 60.0),
                    factor=rng.uniform(0.2, 0.8),
                )
            elif i % 3 == 1:
                self.world.faults.cut_link(link, at=at, duration=rng.uniform(1.0, 30.0))
            else:
                self.world.faults.crash_host(
                    f"fleet-h{i % len(side_links)}a", at=at,
                    duration=rng.uniform(1.0, 30.0),
                )
        self.engine = TransferEngine(self.world)
        self.storage = PosixStorage(self.world.clock)
        self.storage.makedirs("/fleet", 0)
        self._security = DataChannelSecurity(
            mode=DCAUMode.NONE, credential=None, trust=TrustStore(),
            endpoint_name="fleet",
        )
        self._payload = LiteralData(
            bytes(rng.getrandbits(8) for _ in range(cfg.small_file_bytes))
        )
        # the small-file hot path reuses one spec/options trio per call:
        # the engine treats specs as read-only, so only the sink handle
        # needs swapping between transfers
        self._small_source = SourceSpec(
            hosts=("dtn-src",), data=self._payload, security=self._security
        )
        self._small_sink = SinkSpec(
            hosts=("dtn-dst",),
            sink=None,  # type: ignore[arg-type]  # set per transfer
            security=self._security,
        )
        self._small_options = TransferOptions(block_size=cfg.block_size)

    # -- the two phases -------------------------------------------------------

    def run_small_file(self, index: int) -> TransferResult:
        """Move one small file dtn-src -> dtn-dst (the per-file hot path)."""
        sink_spec = self._small_sink
        sink_spec.sink = self.storage.open_write(
            f"/fleet/file-{index}.dat", 0, self._payload.size
        )
        return self.engine.execute(
            self._small_source, sink_spec, self._small_options
        )

    def run_small_files(self, on_each=None) -> FleetRunStats:
        """The many-small-files phase; ``on_each(i, fn)`` may wrap each call."""
        cfg = self.config
        stats = FleetRunStats()
        for i in range(cfg.small_files):
            if on_each is not None:
                result = on_each(i, lambda: self.run_small_file(i))
            else:
                result = self.run_small_file(i)
            stats.transfers += 1
            stats.bytes_moved += result.nbytes
            stats.blocks_planned += _blocks_for(result.nbytes, cfg.block_size)
        return stats

    def run_striped(self) -> FleetRunStats:
        """The multi-GiB striped phase (synthetic content, 4-way stripes)."""
        cfg = self.config
        data = SyntheticData(seed=cfg.seed + 99, length=cfg.striped_bytes)
        sink = self.storage.open_write("/fleet/striped.bin", 0, data.size)
        result = self.engine.execute(
            SourceSpec(hosts=self.src_stripes, data=data, security=self._security),
            SinkSpec(hosts=self.dst_stripes, sink=sink, security=self._security),
            TransferOptions(parallelism=4, block_size=cfg.block_size),
        )
        return FleetRunStats(
            transfers=1,
            bytes_moved=result.nbytes,
            blocks_planned=_blocks_for(result.nbytes, cfg.block_size),
            results=[result],
        )
