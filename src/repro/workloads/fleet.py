"""The worldwide GridFTP fleet (Figure 1's data source).

Section II.A: "The Globus GridFTP server is deployed on more than 5,000
servers worldwide and is responsible for an average of more than 10
million transfers totaling approximately half a petabyte of data every
day ... these numbers are based on reporting from GridFTP servers that
choose to enable reporting, presumably a subset of all servers."

:class:`FleetModel` grows a server fleet over a simulated multi-year
window and synthesizes each day's usage records from the *reporting*
subset, feeding them through the same usage pipeline a live server uses
(:mod:`repro.metrics.usage`).  The growth curve is logistic, calibrated
so the final year matches the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.units import DAY, PB


@dataclass(frozen=True)
class FleetDay:
    """Aggregate usage for one simulated day."""

    day_index: int
    servers_total: int
    servers_reporting: int
    transfers: int
    bytes_moved: int


class FleetModel:
    """Deterministic fleet growth + per-day usage synthesis."""

    def __init__(
        self,
        seed: int = 0,
        days: int = 4 * 365,
        final_servers: int = 5000,
        final_transfers_per_day: float = 10e6,
        final_bytes_per_day: float = 0.5 * PB,
        reporting_fraction: float = 0.6,
        midpoint_fraction: float = 0.55,
        growth_rate: float = 0.006,
    ) -> None:
        self.rng = np.random.default_rng(seed)
        self.days = days
        self.final_servers = final_servers
        self.final_transfers_per_day = final_transfers_per_day
        self.final_bytes_per_day = final_bytes_per_day
        self.reporting_fraction = reporting_fraction
        self.midpoint = midpoint_fraction * days
        self.growth_rate = growth_rate

    def _logistic(self, day: int) -> float:
        """Adoption fraction in (0, 1] at ``day``."""
        raw = 1.0 / (1.0 + np.exp(-self.growth_rate * (day - self.midpoint)))
        end = 1.0 / (1.0 + np.exp(-self.growth_rate * (self.days - self.midpoint)))
        return float(raw / end)

    def day(self, day_index: int) -> FleetDay:
        """Synthesize one day of fleet-wide usage."""
        if not 0 <= day_index < self.days:
            raise ValueError(f"day {day_index} outside [0, {self.days})")
        adoption = self._logistic(day_index)
        servers = max(1, int(round(self.final_servers * adoption)))
        reporting = max(1, int(round(servers * self.reporting_fraction)))
        # day-to-day jitter: weekday dips, noisy science campaigns
        jitter = 1.0 + 0.15 * float(self.rng.standard_normal())
        weekly = 1.0 - 0.2 * (day_index % 7 >= 5)
        transfers = max(
            0, int(self.final_transfers_per_day * adoption * jitter * weekly)
        )
        mean_size = self.final_bytes_per_day / self.final_transfers_per_day
        bytes_moved = int(transfers * mean_size * (1.0 + 0.1 * float(self.rng.standard_normal())))
        return FleetDay(
            day_index=day_index,
            servers_total=servers,
            servers_reporting=reporting,
            transfers=transfers,
            bytes_moved=max(0, bytes_moved),
        )

    def series(self, step_days: int = 7) -> list[FleetDay]:
        """The sampled multi-year series (weekly by default)."""
        return [self.day(d) for d in range(0, self.days, step_days)]

    @staticmethod
    def day_to_time(day_index: int) -> float:
        """Virtual time (seconds) of a day index."""
        return day_index * DAY
