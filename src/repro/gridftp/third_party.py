"""Third-party transfers: a client moving data between two servers.

Paper Section II.C: the client sends PASV to the receiving server, PORT
(with the returned address) to the sending server, then STOR/RETR; the
data flows server-to-server while the client only watches the control
channels.  Data channel authentication runs *between the two servers*,
which is where the cross-domain trust problem of Figure 4 lives and
where a DCSC context (Figure 5) fixes it.

``use_dcsc`` selects the Figure 5 strategies:

* ``None`` — no DCSC: plain DCAU (fails across domains);
* a :class:`~repro.pki.credential.Credential` — send its blob via
  ``DCSC P`` to whichever endpoint(s) advertise DCSC support, so they
  present/accept that credential on the data channel.
"""

from __future__ import annotations

from repro.errors import LinkDownError, TransferFaultError
from repro.gridftp.client import ClientSession
from repro.gridftp.dcsc import encode_dcsc_blob
from repro.gridftp.restart import ByteRangeSet
from repro.gridftp.transfer import SinkSpec, SourceSpec, TransferOptions, TransferResult
from repro.pki.credential import Credential
from repro.recovery import CircuitBreaker, RecoveryEngine, RetryPolicy


def install_dcsc_contexts(
    source_session: ClientSession,
    dest_session: ClientSession,
    context_credential: Credential,
    both: bool = False,
) -> list[str]:
    """Send DCSC P to the DCSC-capable endpoint(s); returns who accepted.

    The paper's key property: "this works even if one endpoint is a
    legacy GridFTP server that knows nothing about DCSC" — so we probe
    FEAT and only send where supported.  With ``both=True`` (the
    higher-security self-signed-context mode) both endpoints must accept.
    """
    blob = encode_dcsc_blob(context_credential)
    accepted: list[str] = []
    sessions = [dest_session, source_session]
    for session in sessions:
        if session.supports("DCSC"):
            session.dcsc(blob)
            accepted.append(session.server.name)
            if not both and accepted:
                break
    return accepted


def third_party_transfer(
    source_session: ClientSession,
    source_path: str,
    dest_session: ClientSession,
    dest_path: str,
    options: TransferOptions | None = None,
    use_dcsc: Credential | None = None,
    dcsc_both: bool = False,
    restart: ByteRangeSet | None = None,
) -> TransferResult:
    """Run one third-party transfer between two logged-in sessions.

    Raises :class:`~repro.errors.DCAUError` when the servers' trust
    domains are disjoint and no adequate DCSC context was installed
    (the Figure 4 outcome), and :class:`TransferFaultError` on injected
    faults (restartable via ``restart``).
    """
    options = options or TransferOptions()
    world = source_session.world
    with world.tracer.span(
        "third_party",
        source=source_session.server.name,
        dest=dest_session.server.name,
    ):
        with world.tracer.span("control_channel", stage="options"):
            source_session.apply_options(options)
            dest_session.apply_options(options)

        if use_dcsc is not None:
            with world.tracer.span("dcsc", both=dcsc_both):
                accepted = install_dcsc_contexts(
                    source_session, dest_session, use_dcsc, both=dcsc_both
                )
                if not accepted:
                    world.emit(
                        "gridftp.dcsc", "no endpoint accepted the DCSC context",
                        source=source_session.server.name, dest=dest_session.server.name,
                    )

        with world.tracer.span("control_channel", stage="data_port"):
            # receiver listens (PASV / SPAS for striped receivers)
            if len(dest_session.server.dtp_hosts) > 1:
                addrs = dest_session.striped_passive()
                source_session.striped_port(addrs)
            else:
                addr = dest_session.passive()
                source_session.port(addr)

            # restart marker: the sender learns which ranges the receiver
            # already holds (it sends the complement); the receiver reopens
            # its partial file instead of truncating.
            if restart is not None:
                source_session.rest(restart)
                dest_session.rest(restart)

            dest_session.command(f"STOR {dest_path}")
            source_session.command(f"RETR {source_path}")

        recv_intent = dest_session.server_session.take_intent()
        send_intent = source_session.server_session.take_intent()
        assert send_intent.data is not None

        sink = dest_session.server_session.make_sink(recv_intent, send_intent.data.size)
        source = SourceSpec(
            hosts=source_session.server.dtp_hosts,
            data=send_intent.data,
            security=source_session.server_session.data_channel_security(),
            needed=send_intent.needed,
        )
        sink_spec = SinkSpec(
            hosts=dest_session.server.dtp_hosts,
            sink=sink,
            security=dest_session.server_session.data_channel_security(),
        )
        engine = source_session.client.engine
        result = engine.execute(source, sink_spec, options)
        source_session.server.record_transfer(
            result, "retrieve", send_intent.path,
            mode=source_session.server_session.mode,
        )
        dest_session.server.record_transfer(
            result, "store", recv_intent.path,
            mode=dest_session.server_session.mode,
        )
        return result


def third_party_with_restart(
    source_session: ClientSession,
    source_path: str,
    dest_session: ClientSession,
    dest_path: str,
    options: TransferOptions | None = None,
    use_dcsc: Credential | None = None,
    max_attempts: int = 5,
    retry_backoff_s: float = 10.0,
    policy: RetryPolicy | None = None,
    breaker: CircuitBreaker | None = None,
) -> tuple[TransferResult, int]:
    """Retry a third-party transfer across faults using restart markers.

    This is the client-side recovery loop a tool like globus-url-copy
    runs; Globus Online's hosted equivalent (which also re-activates
    credentials) lives in :mod:`repro.globusonline.transfer`.  The loop
    itself is a :class:`~repro.recovery.RecoveryEngine`: exponential
    backoff with seeded jitter, restart markers accumulated into a
    checkpoint (round-tripped through the wire format, so chaos-corrupted
    markers are detected and discarded), and an optional circuit breaker
    keyed on the endpoint pair.  Returns (result, attempts_used).
    """
    world = source_session.world
    if policy is None:
        policy = RetryPolicy(
            max_attempts=max_attempts,
            initial_backoff_s=retry_backoff_s,
            multiplier=2.0,
            max_backoff_s=max(retry_backoff_s, 300.0),
            jitter=0.1,
        )
    engine = RecoveryEngine(
        world,
        policy=policy,
        breaker=breaker,
        component="client",
        loop_span_name="retry_loop",
        attempt_span_name="attempt",
    )
    endpoint = f"{source_session.server.name}->{dest_session.server.name}"

    def operation(att):
        _reset_control_state(source_session, dest_session)
        return third_party_transfer(
            source_session,
            source_path,
            dest_session,
            dest_path,
            options,
            use_dcsc=use_dcsc,
            restart=att.checkpoint,
        )

    outcome = engine.run(
        operation,
        endpoint=endpoint if breaker is not None else None,
        wait_clear=lambda _n: _wait_paths_clear(world, source_session, dest_session),
        retry_on=(TransferFaultError, LinkDownError),
        describe="transfer",
        span_fields={"source": source_session.server.name,
                     "dest": dest_session.server.name},
        wrap_exhausted=True,
    )
    return outcome.result, outcome.attempts


def _reset_control_state(
    source_session: ClientSession, dest_session: ClientSession
) -> None:
    """ABOR away half-negotiated transfer state before a fresh attempt.

    A fault that lands mid-control-sequence (e.g. a control-channel drop
    between REST and STOR) can leave queued intents or a pending restart
    marker on a server session; the next attempt would consume them and
    desynchronize.  A clean attempt leaves nothing behind, so this is a
    no-op on the happy path (keeping traced span trees unchanged).
    """
    for session in (source_session, dest_session):
        ss = session.server_session
        if ss.pending or ss.restart is not None:
            session.command("ABOR")


#: longest a retry loop will sleep waiting for one outage to end
_MAX_OUTAGE_WAIT_S = 3600.0


def _wait_paths_clear(
    world, source_session: ClientSession, dest_session: ClientSession
) -> None:
    """Advance the clock until (or up to an hour toward) path recovery."""
    links: set[str] = set()
    hosts: set[str] = set()
    src_host = source_session.server.host
    dst_host = dest_session.server.host
    for a, b in (
        (src_host, dst_host),
        (source_session.client.host, src_host),
        (dest_session.client.host, dst_host),
    ):
        try:
            path = world.network.path(a, b)
        except Exception:
            continue
        links.update(path.link_ids)
        hosts.update(path.hosts)
    clear = world.faults.next_clear_time(links, hosts, world.now)
    if clear > world.now:
        world.advance_to(min(clear, world.now + _MAX_OUTAGE_WAIT_S))
