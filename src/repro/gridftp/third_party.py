"""Third-party transfers: a client moving data between two servers.

Paper Section II.C: the client sends PASV to the receiving server, PORT
(with the returned address) to the sending server, then STOR/RETR; the
data flows server-to-server while the client only watches the control
channels.  Data channel authentication runs *between the two servers*,
which is where the cross-domain trust problem of Figure 4 lives and
where a DCSC context (Figure 5) fixes it.

``use_dcsc`` selects the Figure 5 strategies:

* ``None`` — no DCSC: plain DCAU (fails across domains);
* a :class:`~repro.pki.credential.Credential` — send its blob via
  ``DCSC P`` to whichever endpoint(s) advertise DCSC support, so they
  present/accept that credential on the data channel.
"""

from __future__ import annotations

from repro.errors import LinkDownError, TransferFaultError
from repro.gridftp.client import ClientSession
from repro.gridftp.dcsc import encode_dcsc_blob
from repro.gridftp.restart import ByteRangeSet
from repro.gridftp.transfer import SinkSpec, SourceSpec, TransferOptions, TransferResult
from repro.pki.credential import Credential


def install_dcsc_contexts(
    source_session: ClientSession,
    dest_session: ClientSession,
    context_credential: Credential,
    both: bool = False,
) -> list[str]:
    """Send DCSC P to the DCSC-capable endpoint(s); returns who accepted.

    The paper's key property: "this works even if one endpoint is a
    legacy GridFTP server that knows nothing about DCSC" — so we probe
    FEAT and only send where supported.  With ``both=True`` (the
    higher-security self-signed-context mode) both endpoints must accept.
    """
    blob = encode_dcsc_blob(context_credential)
    accepted: list[str] = []
    sessions = [dest_session, source_session]
    for session in sessions:
        if session.supports("DCSC"):
            session.dcsc(blob)
            accepted.append(session.server.name)
            if not both and accepted:
                break
    return accepted


def third_party_transfer(
    source_session: ClientSession,
    source_path: str,
    dest_session: ClientSession,
    dest_path: str,
    options: TransferOptions | None = None,
    use_dcsc: Credential | None = None,
    dcsc_both: bool = False,
    restart: ByteRangeSet | None = None,
) -> TransferResult:
    """Run one third-party transfer between two logged-in sessions.

    Raises :class:`~repro.errors.DCAUError` when the servers' trust
    domains are disjoint and no adequate DCSC context was installed
    (the Figure 4 outcome), and :class:`TransferFaultError` on injected
    faults (restartable via ``restart``).
    """
    options = options or TransferOptions()
    world = source_session.world
    with world.tracer.span(
        "third_party",
        source=source_session.server.name,
        dest=dest_session.server.name,
    ):
        with world.tracer.span("control_channel", stage="options"):
            source_session.apply_options(options)
            dest_session.apply_options(options)

        if use_dcsc is not None:
            with world.tracer.span("dcsc", both=dcsc_both):
                accepted = install_dcsc_contexts(
                    source_session, dest_session, use_dcsc, both=dcsc_both
                )
                if not accepted:
                    world.emit(
                        "gridftp.dcsc", "no endpoint accepted the DCSC context",
                        source=source_session.server.name, dest=dest_session.server.name,
                    )

        with world.tracer.span("control_channel", stage="data_port"):
            # receiver listens (PASV / SPAS for striped receivers)
            if len(dest_session.server.dtp_hosts) > 1:
                addrs = dest_session.striped_passive()
                source_session.striped_port(addrs)
            else:
                addr = dest_session.passive()
                source_session.port(addr)

            # restart marker: the sender learns which ranges the receiver
            # already holds (it sends the complement); the receiver reopens
            # its partial file instead of truncating.
            if restart is not None:
                source_session.rest(restart)
                dest_session.rest(restart)

            dest_session.command(f"STOR {dest_path}")
            source_session.command(f"RETR {source_path}")

        recv_intent = dest_session.server_session.take_intent()
        send_intent = source_session.server_session.take_intent()
        assert send_intent.data is not None

        sink = dest_session.server_session.make_sink(recv_intent, send_intent.data.size)
        source = SourceSpec(
            hosts=source_session.server.dtp_hosts,
            data=send_intent.data,
            security=source_session.server_session.data_channel_security(),
            needed=send_intent.needed,
        )
        sink_spec = SinkSpec(
            hosts=dest_session.server.dtp_hosts,
            sink=sink,
            security=dest_session.server_session.data_channel_security(),
        )
        engine = source_session.client.engine
        result = engine.execute(source, sink_spec, options)
        source_session.server.record_transfer(
            result, "retrieve", send_intent.path,
            mode=source_session.server_session.mode,
        )
        dest_session.server.record_transfer(
            result, "store", recv_intent.path,
            mode=dest_session.server_session.mode,
        )
        return result


def third_party_with_restart(
    source_session: ClientSession,
    source_path: str,
    dest_session: ClientSession,
    dest_path: str,
    options: TransferOptions | None = None,
    use_dcsc: Credential | None = None,
    max_attempts: int = 5,
    retry_backoff_s: float = 10.0,
) -> tuple[TransferResult, int]:
    """Retry a third-party transfer across faults using restart markers.

    This is the client-side recovery loop a tool like globus-url-copy
    runs; Globus Online's hosted equivalent (which also re-activates
    credentials) lives in :mod:`repro.globusonline.transfer`.  Returns
    (result, attempts_used).
    """
    world = source_session.world
    retries = world.metrics.counter(
        "retries_total", "Transfer attempts retried after a failure",
        labelnames=("component",),
    )
    received: ByteRangeSet | None = None
    with world.tracer.span(
        "retry_loop", component="client", max_attempts=max_attempts
    ):
        for attempt in range(1, max_attempts + 1):
            _wait_paths_clear(world, source_session, dest_session)
            if attempt > 1:
                retries.inc(component="client")
            try:
                with world.tracer.span("attempt", attempt=attempt):
                    result = third_party_transfer(
                        source_session,
                        source_path,
                        dest_session,
                        dest_path,
                        options,
                        use_dcsc=use_dcsc,
                        restart=received,
                    )
                return result, attempt
            except TransferFaultError as fault:
                marker = fault.received if fault.received is not None else ByteRangeSet()
                received = received.union(marker) if received is not None else marker
                world.advance(retry_backoff_s)
            except LinkDownError:
                # an endpoint became unreachable even for control traffic
                world.advance(retry_backoff_s)
        raise TransferFaultError(
            f"transfer failed after {max_attempts} attempts", received=received
        )


#: longest a retry loop will sleep waiting for one outage to end
_MAX_OUTAGE_WAIT_S = 3600.0


def _wait_paths_clear(
    world, source_session: ClientSession, dest_session: ClientSession
) -> None:
    """Advance the clock until (or up to an hour toward) path recovery."""
    links: set[str] = set()
    hosts: set[str] = set()
    src_host = source_session.server.host
    dst_host = dest_session.server.host
    for a, b in (
        (src_host, dst_host),
        (source_session.client.host, src_host),
        (dest_session.client.host, dst_host),
    ):
        try:
            path = world.network.path(a, b)
        except Exception:
            continue
        links.update(path.link_ids)
        hosts.update(path.hosts)
    clear = world.faults.next_clear_time(links, hosts, world.now)
    if clear > world.now:
        world.advance_to(min(clear, world.now + _MAX_OUTAGE_WAIT_S))
