"""Extended block mode (MODE E) framing.

Mode E is what makes GridFTP's data channel restartable and parallel:
every block carries an explicit (offset, count) header, so blocks may
arrive out of order over any number of streams, and the set of received
blocks *is* the restart state.  Header flags mark EOD (end of this data
channel) and EOF.

Block payloads are either literal bytes (small files — full end-to-end
integrity in tests) or a synthetic-content descriptor (huge files — see
:mod:`repro.storage.data`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import ProtocolError
from repro.storage.data import FileData, SyntheticData
from repro.util.ranges import ByteRangeSet
from repro.util.vector import HAS_NUMPY, np

#: below this many blocks (or ranges) the scalar loops win — vector setup
#: overhead dominates tiny plans, and tiny plans are the fleet hot path
VECTOR_MIN_BLOCKS = 64
VECTOR_MIN_RANGES = 8

#: default mode E block size (the Globus default is 256 KiB)
DEFAULT_BLOCK_SIZE = 256 * 1024

# header flag bits (following the GridFTP v2 block header)
FLAG_EOF = 0x40
FLAG_EOD = 0x08


@dataclass(frozen=True)
class Block:
    """One mode E block."""

    offset: int
    size: int
    payload: bytes | None = None  # None => synthetic content
    synthetic: SyntheticData | None = None
    eod: bool = False
    eof: bool = False

    def __post_init__(self) -> None:
        if self.size < 0 or self.offset < 0:
            raise ProtocolError("negative block geometry", code=501)
        if self.payload is not None and len(self.payload) != self.size:
            raise ProtocolError(
                f"block size {self.size} != payload length {len(self.payload)}",
                code=501,
            )

    @property
    def flags(self) -> int:
        """The mode E header flag bits."""
        return (FLAG_EOF if self.eof else 0) | (FLAG_EOD if self.eod else 0)

    def header_bytes(self) -> bytes:
        """The 17-byte mode E header: flags, count, offset."""
        return bytes([self.flags]) + self.size.to_bytes(8, "big") + self.offset.to_bytes(
            8, "big"
        )

    @staticmethod
    def parse_header(header: bytes) -> tuple[int, int, int]:
        """(flags, size, offset) from a 17-byte header."""
        if len(header) != 17:
            raise ProtocolError(f"mode E header must be 17 bytes, got {len(header)}", code=501)
        flags = header[0]
        size = int.from_bytes(header[1:9], "big")
        offset = int.from_bytes(header[9:17], "big")
        return flags, size, offset


def _clamped_ranges(
    total_size: int, needed: ByteRangeSet | None
) -> tuple[tuple[int, int], ...]:
    """The transfer's byte spans, clipped to EOF.

    A ``needed`` range that *starts* at or beyond EOF is a protocol
    error: it would silently plan nothing and then emit a spurious
    bare-EOF block, so we reject it up front (code 501).  Ranges that
    merely *extend* past EOF are clipped, as before.
    """
    if needed is None:
        return ((0, total_size),) if total_size > 0 else ()
    out: list[tuple[int, int]] = []
    for start, end in needed.ranges:
        if start >= total_size:
            raise ProtocolError(
                f"restart range [{start}, {end}) starts beyond EOF "
                f"(file is {total_size} bytes)",
                code=501,
            )
        out.append((start, min(end, total_size)))
    return tuple(out)


@dataclass(frozen=True)
class ModeEPlan:
    """A block schedule held as range arithmetic, not as ``Block`` objects.

    A 10 GiB transfer at the default block size is ~40k blocks; planning
    it as (offset, size) spans keeps per-transfer cost O(#ranges).
    ``delivered_prefix`` reproduces — byte-exactly — what the old
    block-by-block writer delivered under a byte budget: whole blocks in
    plan order, stopping at the first block that does not fit.
    """

    total_size: int
    block_size: int
    ranges: tuple[tuple[int, int], ...]

    @classmethod
    def plan(
        cls,
        total_size: int,
        block_size: int = DEFAULT_BLOCK_SIZE,
        needed: ByteRangeSet | None = None,
    ) -> "ModeEPlan":
        """Build the schedule (``needed`` restricts to restart ranges)."""
        if block_size <= 0:
            raise ProtocolError("block size must be positive", code=501)
        return cls(
            total_size=total_size,
            block_size=block_size,
            ranges=_clamped_ranges(total_size, needed),
        )

    @property
    def total_bytes(self) -> int:
        """Payload bytes the plan covers (sum of span lengths).

        Memoized: plans are immutable and the fleet path reuses one plan
        object across thousands of transfers (frozen dataclass, so the
        cache slot is written via ``object.__setattr__``).
        """
        cached = self.__dict__.get("_total_bytes")
        if cached is None:
            cached = sum(end - start for start, end in self.ranges)
            object.__setattr__(self, "_total_bytes", cached)
        return cached

    @property
    def block_count(self) -> int:
        """Mode E blocks the plan would frame (without framing them)."""
        cached = self.__dict__.get("_block_count")
        if cached is None:
            bs = self.block_size
            cached = sum(-(-(end - start) // bs) for start, end in self.ranges)
            object.__setattr__(self, "_block_count", cached)
        return cached

    def delivered_prefix(self, limit: int | None) -> ByteRangeSet:
        """Ranges safely delivered once ``limit`` payload bytes are spent.

        Mode E acknowledges whole blocks only: a cut mid-block delivers
        nothing for that block.  ``None`` means no budget (everything).

        Many-range restart plans take the vectorized path when numpy is
        available: every range before the budget boundary is delivered
        whole, so one cumulative sum plus a ``searchsorted`` finds the
        boundary range, and only that one range needs block arithmetic.
        The scalar loop (:meth:`_delivered_prefix_scalar`) is the
        executable spec; the differential suite holds them identical.
        """
        if limit is None:
            out = ByteRangeSet()
            for start, end in self.ranges:
                out.add(start, end)
            return out
        if HAS_NUMPY and len(self.ranges) >= VECTOR_MIN_RANGES:
            return self._delivered_prefix_vector(limit)
        return self._delivered_prefix_scalar(limit)

    def _delivered_prefix_scalar(self, limit: int) -> ByteRangeSet:
        """Reference implementation: walk ranges, spend the budget."""
        out = ByteRangeSet()
        bs = self.block_size
        spent = 0
        for start, end in self.ranges:
            length = end - start
            full, tail = divmod(length, bs)
            take_full = min(full, (limit - spent) // bs)
            took = take_full * bs
            if take_full == full and tail and spent + took + tail <= limit:
                took += tail
            if took:
                out.add(start, start + took)
                spent += took
            if took < length:
                break
        return out

    def _delivered_prefix_vector(self, limit: int) -> ByteRangeSet:
        """numpy path: cumulative lengths + one searchsorted.

        Correctness: the scalar spec delivers each range *whole* (blocks
        plus tail) while the running total stays within ``limit``, and
        stops inside the first range that does not fit, taking only the
        whole blocks the remaining budget covers (its tail can never fit
        there, because the whole range already overflowed the budget).
        """
        starts = np.fromiter((r[0] for r in self.ranges), dtype=np.int64,
                             count=len(self.ranges))
        ends = np.fromiter((r[1] for r in self.ranges), dtype=np.int64,
                           count=len(self.ranges))
        cum = np.cumsum(ends - starts)
        k = int(np.searchsorted(cum, limit, side="right"))
        out = ByteRangeSet()
        for i in range(k):
            out.add(int(starts[i]), int(ends[i]))
        if k < len(self.ranges):
            spent = int(cum[k - 1]) if k else 0
            start, end = self.ranges[k]
            bs = self.block_size
            take_full = min((end - start) // bs, (limit - spent) // bs)
            if take_full:
                out.add(start, start + take_full * bs)
        return out


def plan_blocks_scalar(total_size: int, block_size: int = DEFAULT_BLOCK_SIZE,
                       needed: ByteRangeSet | None = None) -> list[tuple[int, int]]:
    """Reference block planner: one loop iteration per block.

    Kept as the executable spec for :func:`plan_blocks`; the
    differential suite drains random geometries through both.
    """
    if block_size <= 0:
        raise ProtocolError("block size must be positive", code=501)
    plan: list[tuple[int, int]] = []
    for start, end in _clamped_ranges(total_size, needed):
        cursor = start
        while cursor < end:
            size = min(block_size, end - cursor)
            plan.append((cursor, size))
            cursor += size
    return plan


def plan_blocks(total_size: int, block_size: int = DEFAULT_BLOCK_SIZE,
                needed: ByteRangeSet | None = None) -> list[tuple[int, int]]:
    """The (offset, size) schedule for a transfer.

    ``needed`` restricts the plan to specific ranges (a restart); blocks
    are aligned to ``block_size`` boundaries within each range.  Ranges
    starting beyond EOF are rejected (see :func:`_clamped_ranges`).

    Large plans (a 10 GiB striped transfer frames ~40k blocks) take the
    numpy path: per range, offsets are one ``arange`` and sizes one
    clipped subtraction — no per-block Python iteration.
    """
    if block_size <= 0:
        raise ProtocolError("block size must be positive", code=501)
    ranges = _clamped_ranges(total_size, needed)
    if not HAS_NUMPY:
        return plan_blocks_scalar(total_size, block_size, needed)
    plan: list[tuple[int, int]] = []
    for start, end in ranges:
        nblocks = -(-(end - start) // block_size)
        if nblocks < VECTOR_MIN_BLOCKS:
            cursor = start
            while cursor < end:
                size = min(block_size, end - cursor)
                plan.append((cursor, size))
                cursor += size
            continue
        offsets = np.arange(start, end, block_size, dtype=np.int64)
        sizes = np.minimum(block_size, end - offsets)
        plan.extend(zip(offsets.tolist(), sizes.tolist()))
    return plan


def iter_blocks(
    data: FileData,
    block_size: int = DEFAULT_BLOCK_SIZE,
    needed: ByteRangeSet | None = None,
) -> Iterator[Block]:
    """Yield mode E blocks covering ``needed`` (default: the whole file).

    The final yielded block carries EOF+EOD.  Synthetic content yields
    descriptor blocks; literal content carries real bytes.
    """
    plan = plan_blocks(data.size, block_size, needed)
    synthetic = data if isinstance(data, SyntheticData) else None
    for i, (offset, size) in enumerate(plan):
        last = i == len(plan) - 1
        if synthetic is not None:
            yield Block(offset=offset, size=size, synthetic=synthetic, eod=last, eof=last)
        else:
            yield Block(
                offset=offset,
                size=size,
                payload=data.read(offset, size),
                eod=last,
                eof=last,
            )
    if not plan:  # zero-byte file: a bare EOF block
        if synthetic is not None:
            yield Block(offset=0, size=0, synthetic=synthetic, eod=True, eof=True)
        else:
            yield Block(offset=0, size=0, payload=b"", eod=True, eof=True)


def round_robin(blocks: list[Block], streams: int) -> list[list[Block]]:
    """Distribute blocks across ``streams`` data channels, round-robin.

    This is how a sender interleaves a file over parallel streams; the
    property tests reassemble every distribution back to the original
    bytes.
    """
    if streams < 1:
        raise ProtocolError("stream count must be >= 1", code=501)
    lanes: list[list[Block]] = [[] for _ in range(streams)]
    for i, block in enumerate(blocks):
        lanes[i % streams].append(block)
    return lanes
