"""Control-channel command parsing and the command registry.

GridFTP commands are single text lines: a case-insensitive verb and an
optional argument.  The registry records which verbs exist, whether they
require an authenticated session, and whether they are GridFTP
extensions (reported by FEAT).  ``DCSC`` is the Section V addition; a
server built with ``dcsc_enabled=False`` behaves as the paper's "legacy
GridFTP server that knows nothing about DCSC".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProtocolError


@dataclass(frozen=True)
class Command:
    """A parsed command line."""

    verb: str
    arg: str

    @property
    def line(self) -> str:
        """The full command line, verb plus argument."""
        return f"{self.verb} {self.arg}".rstrip()


@dataclass(frozen=True)
class CommandSpec:
    """Registry metadata for one verb."""

    verb: str
    requires_auth: bool
    feature: str | None = None  # FEAT label for extensions
    help: str = ""


_REGISTRY: dict[str, CommandSpec] = {}


def _register(verb: str, requires_auth: bool, feature: str | None = None, help: str = "") -> None:
    _REGISTRY[verb] = CommandSpec(verb=verb, requires_auth=requires_auth, feature=feature, help=help)


# RFC 959 core
_register("USER", False, help="Identify the user (or :globus-mapping:)")
_register("PASS", False, help="Password (plain FTP only)")
_register("QUIT", False, help="Close the session")
_register("NOOP", False, help="No operation")
_register("FEAT", False, feature=None, help="List supported extensions")
_register("TYPE", True, help="Representation type (I = image)")
_register("MODE", True, help="Transfer mode (S = stream, E = extended block)")
_register("PWD", True, help="Print working directory")
_register("CWD", True, help="Change working directory")
_register("MKD", True, help="Make directory")
_register("DELE", True, help="Delete file")
_register("RNFR", True, help="Rename from")
_register("RNTO", True, help="Rename to")
_register("LIST", True, help="Directory listing")
_register("SIZE", True, feature="SIZE", help="File size")
_register("MDTM", True, feature="MDTM", help="File modification time")
_register("PASV", True, help="Enter passive mode")
_register("PORT", True, help="Specify data port")
_register("REST", True, feature="REST STREAM", help="Restart marker")
_register("RETR", True, help="Retrieve file")
_register("STOR", True, help="Store file")
_register("ABOR", True, help="Abort transfer")
# RFC 2228 security
_register("AUTH", False, feature="AUTH GSSAPI", help="Security mechanism negotiation")
_register("ADAT", False, help="Security data (credential exchange)")
_register("PBSZ", True, feature="PBSZ", help="Protection buffer size")
_register("PROT", True, feature="PROT", help="Data channel protection level")
# GridFTP extensions
_register("SPAS", True, feature="SPAS", help="Striped passive")
_register("SPOR", True, feature="SPOR", help="Striped port")
_register("DCAU", True, feature="DCAU", help="Data channel authentication mode")
_register("OPTS", True, feature="OPTS", help="Set options (e.g. RETR Parallelism)")
_register("SBUF", True, feature="SBUF", help="Set TCP buffer size")
_register("CKSM", True, feature="CKSM", help="File checksum")
_register("ERET", True, feature="ERET", help="Extended retrieve (partial file)")
_register("ESTO", True, feature="ESTO", help="Extended store (partial file)")
# the paper's new command
_register("DCSC", True, feature="DCSC", help="Data channel security context")


#: parsed-line memo — control channels repeat a small vocabulary of
#: lines ("PASV", "TYPE I", "MODE E", ...) thousands of times per drain;
#: Command is frozen, so sharing instances is observationally identical
_PARSE_MEMO: dict[str, Command] = {}
_PARSE_MEMO_MAX = 4096


def parse_command(line: str) -> Command:
    """Split a raw line into verb + argument (verb upper-cased)."""
    cmd = _PARSE_MEMO.get(line)
    if cmd is not None:
        return cmd
    stripped = line.strip()
    if not stripped:
        raise ProtocolError("empty command line", code=500)
    verb, _, arg = stripped.partition(" ")
    cmd = Command(verb=verb.upper(), arg=arg.strip())
    if len(_PARSE_MEMO) < _PARSE_MEMO_MAX:
        _PARSE_MEMO[line] = cmd
    return cmd


def lookup(verb: str) -> CommandSpec | None:
    """Registry entry for ``verb`` (upper-case), or None if unknown."""
    spec = _REGISTRY.get(verb)
    if spec is not None:
        return spec
    return _REGISTRY.get(verb.upper())


_FEATURE_MEMO: dict[bool, list[str]] = {}


def feature_labels(dcsc_enabled: bool = True) -> list[str]:
    """The FEAT response body for a server."""
    labels = _FEATURE_MEMO.get(dcsc_enabled)
    if labels is None:
        labels = sorted({spec.feature for spec in _REGISTRY.values() if spec.feature})
        if not dcsc_enabled:
            labels.remove("DCSC")
        _FEATURE_MEMO[dcsc_enabled] = labels
    return list(labels)


def known_verbs() -> list[str]:
    """Every registered command verb, sorted."""
    return sorted(_REGISTRY)
