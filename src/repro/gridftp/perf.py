"""Performance markers (``112 Perf Marker``).

During a transfer the server periodically reports, per stripe, how many
bytes have moved.  Globus Online's monitoring (and its auto-tuner's
feedback loop) read these.  We generate markers from the transfer
engine's progress samples.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProtocolError


@dataclass(frozen=True)
class PerfMarker:
    """One performance marker sample."""

    timestamp: float
    stripe_index: int
    stripe_count: int
    bytes_transferred: int

    def format(self) -> str:
        """Render the textual form."""
        return (
            "112-Perf Marker\n"
            f" Timestamp: {self.timestamp:.1f}\n"
            f" Stripe Index: {self.stripe_index}\n"
            f" Stripe Bytes Transferred: {self.bytes_transferred}\n"
            f" Total Stripe Count: {self.stripe_count}\n"
            "112 End"
        )

    @staticmethod
    def parse(text: str) -> "PerfMarker":
        """Parse from the textual form."""
        fields: dict[str, str] = {}
        for line in text.splitlines():
            line = line.strip()
            if ":" in line:
                key, _, value = line.partition(":")
                fields[key.strip()] = value.strip()
        try:
            return PerfMarker(
                timestamp=float(fields["Timestamp"]),
                stripe_index=int(fields["Stripe Index"]),
                stripe_count=int(fields["Total Stripe Count"]),
                bytes_transferred=int(fields["Stripe Bytes Transferred"]),
            )
        except (KeyError, ValueError) as exc:
            raise ProtocolError(f"malformed perf marker: {exc}", code=501) from exc


def progress_markers(
    start_time: float,
    duration: float,
    total_bytes: int,
    stripes: int = 1,
    interval_s: float = 5.0,
) -> list[PerfMarker]:
    """Synthesize the marker sequence a transfer would have emitted.

    Bytes are attributed uniformly over time and round-robin over
    stripes, matching the engine's constant-rate steady state.
    """
    if duration < 0 or total_bytes < 0 or stripes < 1:
        raise ValueError("invalid progress parameters")
    markers: list[PerfMarker] = []
    if duration == 0 or total_bytes == 0:
        return markers
    t = interval_s
    while t < duration:
        done = int(total_bytes * (t / duration))
        for stripe in range(stripes):
            share = done // stripes + (1 if stripe < done % stripes else 0)
            markers.append(
                PerfMarker(
                    timestamp=start_time + t,
                    stripe_index=stripe,
                    stripe_count=stripes,
                    bytes_transferred=share,
                )
            )
        t += interval_s
    return markers
