"""Transfer auto-tuning heuristics.

"Globus Online also has the ability to automatically tune GridFTP
transfer options for high performance" (paper Section VI.A).  These
heuristics pick parallelism, concurrency, pipelining and TCP windows
from what is cheaply observable: the dataset shape and the path's
bandwidth-delay product.  They follow the published Globus Online
tuning rules in spirit: few large files → parallel streams and big
windows; many small files → concurrency + pipelining.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.gridftp.transfer import TransferOptions
from repro.net.topology import PathStats
from repro.util.units import GB, KB, MB
from repro.xio.drivers import Protection


@dataclass(frozen=True)
class DatasetShape:
    """What the tuner knows about the job."""

    file_count: int
    total_bytes: int

    @property
    def mean_size(self) -> float:
        """Average file size in bytes."""
        return self.total_bytes / self.file_count if self.file_count else 0.0

    @staticmethod
    def from_sizes(sizes: Sequence[int]) -> "DatasetShape":
        """Build a shape from a list of file sizes."""
        return DatasetShape(file_count=len(sizes), total_bytes=sum(sizes))


def bandwidth_delay_product(path: PathStats) -> float:
    """BDP in bytes: what a single stream's window must hold to fill the pipe."""
    return path.bottleneck_bps / 8.0 * path.rtt_s


def autotune(
    shape: DatasetShape,
    path: PathStats,
    protection: Protection = Protection.CLEAR,
) -> TransferOptions:
    """Pick transfer options for a dataset on a path."""
    bdp = bandwidth_delay_product(path)

    if shape.file_count == 0:
        return TransferOptions(protection=protection)

    if shape.mean_size < 4 * MB and shape.file_count > 8:
        # lots of small files: round trips dominate — pipeline commands,
        # move several files at once, keep per-file streams modest.
        return TransferOptions(
            parallelism=2,
            concurrency=min(8, max(2, shape.file_count // 64 + 2)),
            pipelining=True,
            tcp_window_bytes=int(min(4 * MB, max(256 * KB, bdp))),
            protection=protection,
        )

    # bulk data: escape window and loss limits with parallel streams and
    # tuned buffers.
    parallelism = 4
    if shape.mean_size >= GB:
        parallelism = 8
    if path.rtt_s >= 0.05:
        parallelism = min(16, parallelism * 2)
    window = int(min(16 * MB, max(1 * MB, bdp / parallelism)))
    return TransferOptions(
        parallelism=parallelism,
        concurrency=2 if shape.file_count > 1 else 1,
        pipelining=shape.file_count > 1,
        tcp_window_bytes=window,
        protection=protection,
    )
