"""The Data Transfer Process (DTP).

Figure 2 separates GridFTP into protocol interpreters and "the data
transfer process (DTP), which handles access to the actual data and its
movement via the data channel protocol.  These components can be
combined in various ways to create servers with different capabilities."

A :class:`DataTransferProcess` is the storage-facing half: it lives on a
host, owns a DSI, and produces the source/sink halves the transfer
engine consumes.  ``GridFTPServer`` is the PI+DTP-in-one-process
composition ("a conventional FTP server"); ``StripedGridFTPServer``
fronts one DTP per stripe node.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.gridftp.restart import ByteRangeSet
from repro.storage.data import FileData
from repro.storage.dsi import DataStorageInterface, WriteSink
from repro.telemetry.profiling import timed

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.world import World


class DataTransferProcess:
    """The data-moving component on one host."""

    def __init__(self, world: "World", host: str, dsi: DataStorageInterface) -> None:
        world.network.host(host)  # must exist
        self.world = world
        self.host = host
        self.dsi = dsi

    @timed("storage.open_source")
    def open_source(self, path: str, uid: int, needed: ByteRangeSet | None = None) -> FileData:
        """Open a file for sending (permission-checked as ``uid``)."""
        del needed  # range selection happens in the engine's block plan
        return self.dsi.open_read(path, uid)

    @timed("storage.open_sink")
    def open_sink(
        self, path: str, uid: int, expected_size: int, resume: bool = False
    ) -> WriteSink:
        """Open a file for receiving."""
        return self.dsi.open_write(path, uid, expected_size, resume=resume)


def compose_conventional_server(world: "World", host: str, dsi: DataStorageInterface,
                                **server_kwargs) -> "object":
    """PI + DTP in one process: a conventional (non-striped) server.

    A convenience mirroring the Figure 2 narrative; equivalent to
    constructing :class:`~repro.gridftp.server.GridFTPServer` directly.
    """
    from repro.gridftp.server import GridFTPServer

    return GridFTPServer(world, host, dsi=dsi, **server_kwargs)
