"""Data channel authentication (DCAU).

Paper Section II.C: for third-party transfers "GridFTP defaults to
requiring GSI authentication on the data channel ... both ends of the
authentication must present the user's proxy certificate.  A limitation
of current GridFTP protocol implementations is that all parties involved
in the transfer must accept the same CA."  That limitation is Figure 4,
and the functions here raise :class:`~repro.errors.DCAUError` in exactly
that case — unless a DCSC context (Section V) supplies the missing
anchors and/or an alternate credential.

Modes (the DCAU command argument):

* ``N`` — no data channel authentication;
* ``A`` — authenticate: the peer must hold the same identity as the
  control-channel user ("self" authentication);
* ``S <subject>`` — the peer must hold the given subject.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import AuthenticationError, DCAUError
from repro.gsi.session_cache import caching_enabled
from repro.pki.certificate import Certificate
from repro.pki.credential import Credential
from repro.pki.dn import DistinguishedName
from repro.pki.proxy import strip_proxy_cns
from repro.pki.validation import TrustStore, validate_chain
from repro.util import opcount


class DCAUMode(enum.Enum):
    """Data channel authentication mode."""

    NONE = "N"
    SELF = "A"
    SUBJECT = "S"

    @staticmethod
    def parse(text: str) -> "DCAUMode":
        """Parse from the textual form."""
        try:
            return DCAUMode(text.strip().upper()[:1])
        except ValueError:
            raise DCAUError(f"unknown DCAU mode {text!r}") from None


@dataclass
class DataChannelSecurity:
    """One endpoint's contribution to data-channel authentication.

    ``credential`` is what this endpoint *presents* (normally the user's
    delegated proxy; with DCSC, the blob credential).  ``trust`` plus
    ``extra_anchors``/``extra_intermediates`` are what it *accepts*
    (normally the endpoint's trusted-CA directory; DCSC adds the blob's
    certificates).  ``expected_identity`` backs mode A/S checks.
    """

    mode: DCAUMode
    credential: Credential | None
    trust: TrustStore
    extra_anchors: tuple[Certificate, ...] = ()
    extra_intermediates: tuple[Certificate, ...] = ()
    expected_identity: DistinguishedName | None = None
    expected_subject_override: DistinguishedName | None = None  # DCSC: expect blob subject
    endpoint_name: str = "?"

    def presented(self) -> Credential:
        """The credential this endpoint presents (or raise)."""
        if self.credential is None:
            raise DCAUError(
                f"endpoint {self.endpoint_name} has no data-channel credential to present"
            )
        return self.credential


def _validate_peer(acceptor: DataChannelSecurity, peer: Credential, now: float) -> None:
    """One direction of the mutual data-channel handshake."""
    try:
        result = validate_chain(
            peer.chain,
            acceptor.trust,
            now,
            extra_anchors=acceptor.extra_anchors,
            extra_intermediates=acceptor.extra_intermediates,
        )
    except AuthenticationError as exc:  # pragma: no cover - defensive
        raise DCAUError(str(exc)) from exc
    except Exception as exc:
        raise DCAUError(
            f"endpoint {acceptor.endpoint_name} rejected data-channel credential "
            f"{peer.subject}: {exc}"
        ) from exc
    if acceptor.mode is DCAUMode.NONE:
        return
    expected = acceptor.expected_subject_override or acceptor.expected_identity
    if expected is None:
        return
    expected_identity = strip_proxy_cns(expected)
    if result.identity != expected_identity:
        raise DCAUError(
            f"endpoint {acceptor.endpoint_name} expected data-channel identity "
            f"{expected_identity}, peer presented {result.identity}"
        )


def authenticate_data_channel(
    connector: DataChannelSecurity,
    listener: DataChannelSecurity,
    now: float,
) -> bool:
    """Mutual data-channel authentication between the two endpoints.

    Returns True if authentication ran, False if both sides agreed on
    DCAU N (no authentication).  Raises :class:`DCAUError` on failure —
    including the Figure 4 trust-root miss.
    """
    if connector.mode is DCAUMode.NONE and listener.mode is DCAUMode.NONE:
        return False
    if connector.mode is DCAUMode.NONE or listener.mode is DCAUMode.NONE:
        raise DCAUError(
            f"DCAU mode mismatch: {connector.endpoint_name}={connector.mode.value} "
            f"vs {listener.endpoint_name}={listener.mode.value}"
        )
    # each side validates what the other presents
    _validate_peer(listener, connector.presented(), now)
    _validate_peer(connector, listener.presented(), now)
    return True


def _side_key(side: DataChannelSecurity) -> tuple:
    """Everything one endpoint contributes to the handshake outcome.

    Memoized on the instance: every field of DataChannelSecurity is
    immutable in practice (endpoints build a fresh posture object when
    their state changes), except that the shared trust store mutates in
    place — so the memo revalidates against ``trust.version`` and
    rebuilds when the store changed underneath the instance.
    """
    d = side.__dict__
    memo = d.get("_key_memo")
    version = side.trust.version
    if memo is not None and memo[0] == version:
        return memo[1]
    key = (
        side.mode,
        side.credential.certificate.fingerprint() if side.credential else None,
        side.trust.uid,
        version,
        tuple(c.fingerprint() for c in side.extra_anchors),
        tuple(c.fingerprint() for c in side.extra_intermediates),
        str(side.expected_identity) if side.expected_identity else None,
        str(side.expected_subject_override) if side.expected_subject_override else None,
    )
    d["_key_memo"] = (version, key)
    return key


class DataChannelAuthCache:
    """GridFTP-style data-channel caching for the DCAU handshake.

    Real servers keep mode-E data channels open across files precisely
    so DCAU runs once per channel, not once per file (Allcock et al.).
    :func:`authenticate_data_channel` advances no clock and consumes no
    randomness — the 2·RTT channel-setup charge is applied separately by
    the transfer engine under ``charge_setup`` — so replaying a prior
    *success* is wall-clock-only by construction.

    Success-only and window-bounded: an entry replays while ``now`` is
    inside the validity window of every certificate both sides
    presented, under unchanged trust stores (uid/version in the key).
    Failures always re-run, so error messages, DCSC mode mismatches and
    the Figure 4 trust miss behave exactly as uncached.
    """

    MAX_ENTRIES = 2048

    def __init__(self) -> None:
        self._entries: dict[tuple, tuple[float, float]] = {}
        self.hits = 0
        self.misses = 0

    def authenticate(
        self,
        connector: DataChannelSecurity,
        listener: DataChannelSecurity,
        now: float,
    ) -> bool:
        """As :func:`authenticate_data_channel`, replaying cached successes."""
        if not caching_enabled():
            return authenticate_data_channel(connector, listener, now)
        if connector.mode is DCAUMode.NONE and listener.mode is DCAUMode.NONE:
            return authenticate_data_channel(connector, listener, now)
        key = (_side_key(connector), _side_key(listener))
        window = self._entries.get(key)
        if window is not None:
            lo, hi = window
            if lo <= now <= hi:
                self.hits += 1
                opcount.bump("dcau.cached")
                return True
            del self._entries[key]
        self.misses += 1
        opcount.bump("dcau.full")
        result = authenticate_data_channel(connector, listener, now)
        if result:
            chains = connector.presented().chain + listener.presented().chain
            if len(self._entries) >= self.MAX_ENTRIES:
                self._entries.pop(next(iter(self._entries)))
            self._entries[key] = (
                max(c.not_before for c in chains),
                min(c.not_after for c in chains),
            )
        return result

    def stats(self) -> dict[str, int]:
        """Point-in-time counters for ops tables and tests."""
        return {"entries": len(self._entries), "hits": self.hits, "misses": self.misses}
