"""The GridFTP client PI and the ``globus-url-copy``-style API.

A :class:`GridFTPClient` holds a user's credential and trust roots on a
client host; :meth:`~GridFTPClient.connect` opens a control channel and
performs the mutual GSI handshake (client validates the server's host
certificate; server validates the user's delegated proxy).  The session
object then exposes the protocol commands plus high-level ``get``/
``put``/``get_many`` operations that drive the transfer engine.

``globus_url_copy`` mirrors the command from paper Section IV.E::

    globus-url-copy gsiftp://<server>/<path> file:/<path>
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AuthenticationError, ProtocolError, TransferError
from repro.gridftp.dcau import DataChannelSecurity, DCAUMode
from repro.gridftp.replies import Reply, raise_for_reply
from repro.gridftp.restart import ByteRangeSet, format_restart_marker
from repro.gridftp.server import GridFTPServer, GridFTPSession, TransferIntent
from repro.gridftp.transfer import (
    SinkSpec,
    SourceSpec,
    TransferEngine,
    TransferOptions,
    TransferResult,
)
from repro.gsi.delegation import delegate_credential
from repro.net.channel import ControlChannel
from repro.pki.certificate import Certificate
from repro.pki.credential import Credential
from repro.pki.validation import TrustStore, validate_chain
from repro.sim.world import World
from repro.storage.dsi import DataStorageInterface
from repro.util.encoding import b64decode_str, b64encode_str, pem_decode_all


@dataclass(frozen=True)
class GridFTPUrl:
    """A parsed ``gsiftp://host[:port]/path`` or ``file:///path`` URL."""

    scheme: str
    host: str
    port: int
    path: str

    @staticmethod
    def parse(url: str) -> "GridFTPUrl":
        """Parse from the textual form."""
        scheme, sep, rest = url.partition("://")
        if not sep:
            # accept the paper's "file:/<path>" single-slash spelling
            if url.startswith("file:/"):
                return GridFTPUrl(scheme="file", host="", port=0, path=url[len("file:") :])
            raise ProtocolError(f"malformed URL {url!r}", code=501)
        scheme = scheme.lower()
        if scheme == "file":
            return GridFTPUrl(scheme="file", host="", port=0, path="/" + rest.lstrip("/"))
        if scheme not in ("gsiftp", "ftp"):
            raise ProtocolError(f"unsupported URL scheme {scheme!r}", code=501)
        hostport, slash, path = rest.partition("/")
        host, _, port_s = hostport.partition(":")
        port = int(port_s) if port_s else GridFTPServer.DEFAULT_PORT
        return GridFTPUrl(scheme=scheme, host=host, port=port, path="/" + path)

    def __str__(self) -> str:
        if self.scheme == "file":
            return f"file://{self.path}"
        return f"{self.scheme}://{self.host}:{self.port}{self.path}"


class GridFTPClient:
    """A user's GridFTP client on a particular host."""

    def __init__(
        self,
        world: World,
        host: str,
        credential: Credential | None = None,
        trust: TrustStore | None = None,
        local_storage: DataStorageInterface | None = None,
        username: str = "user",
    ) -> None:
        self.world = world
        self.host = host
        self.credential = credential
        self.trust = trust or TrustStore()
        self.local_storage = local_storage
        self.username = username
        self.engine = TransferEngine.for_world(world)

    # -- connection ----------------------------------------------------------

    def connect(
        self,
        server: GridFTPServer | tuple[str, int],
        login: bool = True,
        username: str | None = None,
    ) -> "ClientSession":
        """Open a control channel; optionally authenticate and log in."""
        address = server.address if isinstance(server, GridFTPServer) else server
        channel = ControlChannel(self.world.network, self.host, address)
        session = ClientSession(self, channel)
        if login:
            session.login(username=username)
        return session

    # -- local data-channel posture --------------------------------------------

    def data_channel_security(self, mode: DCAUMode) -> DataChannelSecurity:
        """The client side of a two-party data channel."""
        expected = self.credential.identity if self.credential else None
        return DataChannelSecurity(
            mode=mode,
            credential=self.credential,
            trust=self.trust,
            expected_identity=expected,
            endpoint_name=f"client@{self.host}",
        )


class ClientSession:
    """A logged-in control-channel session, with high-level operations."""

    def __init__(self, client: GridFTPClient, channel: ControlChannel) -> None:
        self.client = client
        self.channel = channel
        self.world = client.world
        self.authenticated = False
        self.logged_in_as: str | None = None
        self._options_applied: TransferOptions | None = None

    # -- low-level helpers ---------------------------------------------------

    @property
    def server_session(self) -> GridFTPSession:
        """The server-side session object (introspection)."""
        session = self.channel.session
        assert isinstance(session, GridFTPSession)
        return session

    @property
    def server(self) -> GridFTPServer:
        """The GridFTP server this session talks to."""
        return self.server_session.server

    def command(self, line: str) -> Reply:
        """Send one command; return the final reply (raise on 4xx/5xx)."""
        lines = self.channel.request(line)
        if not lines:
            raise ProtocolError(f"no reply to {line!r}")
        return raise_for_reply(Reply.parse(lines[-1]))

    def command_lines(self, line: str) -> list[str]:
        """Send one command; return every reply line (multiline replies)."""
        lines = self.channel.request(line)
        raise_for_reply(Reply.parse(lines[-1]))
        return lines

    # -- the GSI handshake -------------------------------------------------------

    def login(self, username: str | None = None) -> str:
        """AUTH/ADAT mutual authentication, then USER mapping.

        Returns the local account name the server mapped us to.
        """
        client = self.client
        if client.credential is None:
            raise AuthenticationError(
                f"client {client.username!r} has no credential to authenticate with"
            )
        reply = self.command("AUTH GSSAPI")
        # the 334 carries the server's certificate chain; validate it
        # against *our* trust roots (the client half of mutual auth).
        if not reply.text.startswith("ADAT="):
            raise AuthenticationError(f"unexpected AUTH reply: {reply}")
        chain = _parse_cert_chain(b64decode_str(reply.text[len("ADAT=") :]))
        try:
            validate_chain(chain, client.trust, self.world.now)
        except Exception as exc:
            raise AuthenticationError(
                f"client rejected server certificate {chain[0].subject}: {exc}"
            ) from exc
        # delegate a proxy to the server and present it
        delegated = delegate_credential(
            client.credential, self.world.clock, self.world.rng.python("delegation")
        )
        # the b64 blob is a pure function of the (immutable) credential;
        # replayed delegations present the identical blob without re-encoding
        blob = delegated.__dict__.get("_adat_blob")
        if blob is None:
            blob = b64encode_str(delegated.to_pem(include_key=True).encode("ascii"))
            object.__setattr__(delegated, "_adat_blob", blob)
        user_arg = username if username is not None else ":globus-mapping:"
        try:
            self.command(f"ADAT {blob}")
            self.authenticated = True
            self.command(f"USER {user_arg}")
        except ProtocolError as exc:
            if exc.code in (530, 535):
                raise AuthenticationError(str(exc)) from exc
            raise
        self.logged_in_as = self.server_session.account.username
        return self.logged_in_as

    # -- session parameter helpers ---------------------------------------------------

    def apply_options(self, options: TransferOptions) -> None:
        """Push transfer options to the server (idempotent per option set)."""
        if self._options_applied == options:
            return
        commands = ["TYPE I", "MODE E", f"OPTS RETR Parallelism={options.parallelism};"]
        commands.append("PBSZ 0")
        commands.append(f"PROT {options.protection.value}")
        if options.dcau is DCAUMode.SUBJECT and options.dcau_subject:
            commands.append(f"DCAU S {options.dcau_subject}")
        else:
            commands.append(f"DCAU {options.dcau.value}")
        if options.tcp_window_bytes:
            commands.append(f"SBUF {options.tcp_window_bytes}")
        for lines in self.channel.pipeline(commands):
            raise_for_reply(Reply.parse(lines[-1]))
        self._options_applied = options

    def dcsc(self, blob_or_default: str) -> Reply:
        """Send a DCSC command: a P blob, or "D" to revert."""
        if blob_or_default.upper() == "D":
            return self.command("DCSC D")
        return self.command(f"DCSC P {blob_or_default}")

    # -- namespace convenience ------------------------------------------------------

    def pwd(self) -> str:
        """Current working directory (PWD)."""
        reply = self.command("PWD")
        return reply.text.split('"')[1]

    def cwd(self, path: str) -> None:
        """Change working directory (CWD)."""
        self.command(f"CWD {path}")

    def mkdir(self, path: str) -> None:
        """Create a directory (MKD)."""
        self.command(f"MKD {path}")

    def delete(self, path: str) -> None:
        """Remove a file (DELE)."""
        self.command(f"DELE {path}")

    def rename(self, old: str, new: str) -> None:
        """Move a file (RNFR/RNTO)."""
        self.command(f"RNFR {old}")
        self.command(f"RNTO {new}")

    def size(self, path: str) -> int:
        """Remote file size in bytes (SIZE)."""
        return int(self.command(f"SIZE {path}").text)

    def checksum(self, path: str, algorithm: str = "sha256") -> str:
        """Server-side checksum of a file (CKSM)."""
        return self.command(f"CKSM {algorithm} {path}").text

    def list_dir(self, path: str = "") -> list[str]:
        """Names in a directory (LIST)."""
        lines = self.command_lines(f"LIST {path}".strip())
        return [l.strip() for l in lines[1:-1]]

    def features(self) -> list[str]:
        """The server's FEAT extension labels."""
        lines = self.command_lines("FEAT")
        return [l.strip() for l in lines[1:-1]]

    def supports(self, feature: str) -> bool:
        """True if the server advertises ``feature`` in FEAT."""
        return feature.upper() in {f.upper() for f in self.features()}

    def quit(self) -> None:
        """Close the session (QUIT)."""
        self.command("QUIT")
        self.channel.close()

    # -- data port negotiation ----------------------------------------------------------

    def passive(self) -> tuple[str, int]:
        """PASV; returns the server's data address."""
        reply = self.command("PASV")
        addr = reply.text.split("(", 1)[1].rstrip(")")
        host, _, port_s = addr.rpartition(":")
        return (host, int(port_s))

    def striped_passive(self) -> list[tuple[str, int]]:
        """SPAS; returns one data address per stripe."""
        lines = self.command_lines("SPAS")
        out: list[tuple[str, int]] = []
        for line in lines[1:-1]:
            host, _, port_s = line.strip().rpartition(":")
            out.append((host, int(port_s)))
        return out

    def port(self, addr: tuple[str, int]) -> None:
        """Tell the server where to connect (PORT)."""
        self.command(f"PORT {addr[0]}:{addr[1]}")

    def striped_port(self, addrs: list[tuple[str, int]]) -> None:
        """Striped PORT (SPOR) with one address per stripe."""
        arg = " ".join(f"{h}:{p}" for h, p in addrs)
        self.command(f"SPOR {arg}")

    def rest(self, ranges: ByteRangeSet) -> None:
        """Send a restart marker (REST) with the held ranges."""
        self.command(f"REST {format_restart_marker(ranges)}")

    # -- whole-file operations ------------------------------------------------------------

    def get(
        self,
        remote_path: str,
        local_path: str,
        options: TransferOptions | None = None,
        restart: ByteRangeSet | None = None,
    ) -> TransferResult:
        """RETR ``remote_path`` into the client's local storage."""
        client = self.client
        if client.local_storage is None:
            raise TransferError("client has no local storage configured")
        options = options or TransferOptions()
        self.apply_options(options)
        if restart is not None:
            self.rest(restart)  # the ranges we already hold
        self.command(f"RETR {remote_path}")
        intent = self.server_session.take_intent()
        assert intent.data is not None
        source = SourceSpec(
            hosts=self.server.dtp_hosts,
            data=intent.data,
            security=self.server_session.data_channel_security(),
            needed=intent.needed,
        )
        sink = client.local_storage.open_write(
            local_path, 0, intent.data.size, resume=restart is not None
        )
        sink_spec = SinkSpec(
            hosts=(client.host,),
            sink=sink,
            security=client.data_channel_security(options.dcau),
        )
        result = client.engine.execute(source, sink_spec, options)
        self.server.record_transfer(result, "retrieve", intent.path,
                                    mode=self.server_session.mode)
        return result

    def put(
        self,
        local_path: str,
        remote_path: str,
        options: TransferOptions | None = None,
        restart: ByteRangeSet | None = None,
    ) -> TransferResult:
        """STOR the client's local file to ``remote_path``."""
        client = self.client
        if client.local_storage is None:
            raise TransferError("client has no local storage configured")
        options = options or TransferOptions()
        self.apply_options(options)
        data = client.local_storage.open_read(local_path, 0)
        needed = None
        if restart is not None:
            needed = restart.complement(data.size)
            self.rest(restart)
        self.passive()
        self.command(f"STOR {remote_path}")
        intent = self.server_session.take_intent()
        sink = self.server_session.make_sink(intent, data.size)
        source = SourceSpec(
            hosts=(client.host,),
            data=data,
            security=client.data_channel_security(options.dcau),
            needed=needed,
        )
        sink_spec = SinkSpec(
            hosts=self.server.dtp_hosts,
            sink=sink,
            security=self.server_session.data_channel_security(),
        )
        result = client.engine.execute(source, sink_spec, options)
        self.server.record_transfer(result, "store", intent.path,
                                    mode=self.server_session.mode)
        return result

    def get_partial(
        self,
        remote_path: str,
        offset: int,
        length: int,
        local_path: str,
        options: TransferOptions | None = None,
    ) -> TransferResult:
        """ERET: retrieve only [offset, offset+length) of a remote file.

        The local file is created at the remote file's full size with
        just that window populated (the partial persists, so later
        windows can fill in around it).
        """
        client = self.client
        if client.local_storage is None:
            raise TransferError("client has no local storage configured")
        options = options or TransferOptions()
        self.apply_options(options)
        size = self.size(remote_path)
        self.command(f"ERET P {offset} {length} {remote_path}")
        intent = self.server_session.take_intent()
        assert intent.data is not None
        source = SourceSpec(
            hosts=self.server.dtp_hosts,
            data=intent.data,
            security=self.server_session.data_channel_security(),
            needed=intent.needed,
        )
        sink = client.local_storage.open_write(local_path, 0, size, resume=True)
        sink_spec = SinkSpec(
            hosts=(client.host,),
            sink=sink,
            security=client.data_channel_security(options.dcau),
        )
        # a window transfer cannot verify the whole-file fingerprint;
        # finalize only once the accumulated windows cover the file.
        complete = sink.received.union(
            intent.needed if intent.needed is not None else sink.received
        ).covers(size)
        result = client.engine.execute(source, sink_spec, options,
                                       finalize=complete)
        self.server.record_transfer(result, "retrieve-partial", intent.path,
                                    mode=self.server_session.mode)
        return result

    def get_many(
        self,
        paths: list[tuple[str, str]],
        options: TransferOptions | None = None,
    ) -> list[TransferResult]:
        """Fetch many (remote, local) files.

        Honours the two lots-of-small-files optimizations from the paper:

        * **pipelining** — all RETR commands stream back-to-back in one
          round trip instead of one round trip each;
        * **concurrency** — ``options.concurrency`` files move at once;
          the elapsed virtual time is the concurrent makespan.

        Data channels are mode E cached: only the first file pays
        channel setup.
        """
        client = self.client
        if client.local_storage is None:
            raise TransferError("client has no local storage configured")
        options = options or TransferOptions()
        self.apply_options(options)

        intents: list[tuple[TransferIntent, str]] = []
        if options.pipelining:
            batches = self.channel.pipeline([f"RETR {r}" for r, _ in paths])
            for (remote, local), lines in zip(paths, batches):
                raise_for_reply(Reply.parse(lines[-1]))
                intents.append((self.server_session.take_intent(), local))
        else:
            for remote, local in paths:
                self.command(f"RETR {remote}")
                intents.append((self.server_session.take_intent(), local))

        results: list[TransferResult] = []
        k = max(1, options.concurrency)
        lane_time = [0.0] * k
        for i, (intent, local) in enumerate(intents):
            assert intent.data is not None
            source = SourceSpec(
                hosts=self.server.dtp_hosts,
                data=intent.data,
                security=self.server_session.data_channel_security(),
            )
            sink = client.local_storage.open_write(local, 0, intent.data.size)
            sink_spec = SinkSpec(
                hosts=(client.host,),
                sink=sink,
                security=client.data_channel_security(options.dcau),
            )
            result = client.engine.execute(
                source,
                sink_spec,
                options,
                charge_setup=(i < k),  # one channel set per lane
                advance_clock=False,
            )
            lane = min(range(k), key=lane_time.__getitem__)
            lane_time[lane] += result.duration_s
            results.append(result)
            self.server.record_transfer(result, "retrieve", intent.path,
                                        mode=self.server_session.mode)
        self.world.advance(max(lane_time) if lane_time else 0.0)
        return results


#: parsed server AUTH banners — every session to one server presents the
#: same chain bytes, and certificates are immutable, so re-parsing is
#: indistinguishable from replaying (bounded; keys are the raw PEM bytes)
_CHAIN_MEMO: dict[bytes, tuple[Certificate, ...]] = {}
_CHAIN_MEMO_MAX = 1024


def _parse_cert_chain(pem_bytes: bytes) -> list[Certificate]:
    """Certificates from concatenated PEM (server AUTH reply)."""
    chain = _CHAIN_MEMO.get(pem_bytes)
    if chain is None:
        text = pem_bytes.decode("ascii", errors="replace")
        chain = tuple(Certificate.from_der(der)
                      for label, der in pem_decode_all(text)
                      if label == "CERTIFICATE")
        if len(_CHAIN_MEMO) < _CHAIN_MEMO_MAX:
            _CHAIN_MEMO[pem_bytes] = chain
    return list(chain)


def globus_url_copy(
    world: World,
    src_url: str,
    dst_url: str,
    client: GridFTPClient,
    options: TransferOptions | None = None,
) -> TransferResult:
    """The command-line workhorse from paper Section IV.E.

    Supports ``gsiftp -> file`` (get), ``file -> gsiftp`` (put), and
    ``gsiftp -> gsiftp`` (third-party transfer).
    """
    src = GridFTPUrl.parse(src_url)
    dst = GridFTPUrl.parse(dst_url)
    options = options or TransferOptions()
    if src.scheme == "gsiftp" and dst.scheme == "file":
        session = client.connect((src.host, src.port))
        try:
            return session.get(src.path, dst.path, options)
        finally:
            session.quit()
    if src.scheme == "file" and dst.scheme == "gsiftp":
        session = client.connect((dst.host, dst.port))
        try:
            return session.put(src.path, dst.path, options)
        finally:
            session.quit()
    if src.scheme == "gsiftp" and dst.scheme == "gsiftp":
        from repro.gridftp.third_party import third_party_transfer

        src_session = client.connect((src.host, src.port))
        dst_session = client.connect((dst.host, dst.port))
        try:
            return third_party_transfer(
                src_session, src.path, dst_session, dst.path, options
            )
        finally:
            src_session.quit()
            dst_session.quit()
    raise ProtocolError(f"unsupported URL pair {src_url!r} -> {dst_url!r}", code=501)
