"""The GridFTP client PI and the ``globus-url-copy``-style API.

A :class:`GridFTPClient` holds a user's credential and trust roots on a
client host; :meth:`~GridFTPClient.connect` opens a control channel and
performs the mutual GSI handshake (client validates the server's host
certificate; server validates the user's delegated proxy).  The session
object then exposes the protocol commands plus high-level ``get``/
``put``/``get_many`` operations that drive the transfer engine.

``globus_url_copy`` mirrors the command from paper Section IV.E::

    globus-url-copy gsiftp://<server>/<path> file:/<path>
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AuthenticationError, ProtocolError, TransferError
from repro.gridftp.dcau import DataChannelSecurity, DCAUMode
from repro.gridftp.replies import Reply, raise_for_reply
from repro.gridftp.restart import ByteRangeSet, format_restart_marker
from repro.gridftp.server import GridFTPServer, GridFTPSession, TransferIntent
from repro.gridftp.transfer import (
    SinkSpec,
    SourceSpec,
    TransferEngine,
    TransferOptions,
    TransferResult,
)
from repro.gsi.delegation import delegate_credential
from repro.gsi.session_cache import caching_enabled
from repro.net.channel import ControlChannel
from repro.util import opcount
from repro.pki.certificate import Certificate
from repro.pki.credential import Credential
from repro.pki.dn import DistinguishedName
from repro.xio.drivers import Protection
from repro.pki.validation import TrustStore, validate_chain
from repro.sim.world import World
from repro.storage.dsi import DataStorageInterface
from repro.util.encoding import b64decode_str, b64encode_str, pem_decode_all


@dataclass(frozen=True)
class GridFTPUrl:
    """A parsed ``gsiftp://host[:port]/path`` or ``file:///path`` URL."""

    scheme: str
    host: str
    port: int
    path: str

    @staticmethod
    def parse(url: str) -> "GridFTPUrl":
        """Parse from the textual form."""
        scheme, sep, rest = url.partition("://")
        if not sep:
            # accept the paper's "file:/<path>" single-slash spelling
            if url.startswith("file:/"):
                return GridFTPUrl(scheme="file", host="", port=0, path=url[len("file:") :])
            raise ProtocolError(f"malformed URL {url!r}", code=501)
        scheme = scheme.lower()
        if scheme == "file":
            return GridFTPUrl(scheme="file", host="", port=0, path="/" + rest.lstrip("/"))
        if scheme not in ("gsiftp", "ftp"):
            raise ProtocolError(f"unsupported URL scheme {scheme!r}", code=501)
        hostport, slash, path = rest.partition("/")
        host, _, port_s = hostport.partition(":")
        port = int(port_s) if port_s else GridFTPServer.DEFAULT_PORT
        return GridFTPUrl(scheme=scheme, host=host, port=port, path="/" + path)

    def __str__(self) -> str:
        if self.scheme == "file":
            return f"file://{self.path}"
        return f"{self.scheme}://{self.host}:{self.port}{self.path}"


@dataclass
class _PooledSession:
    """One idle, authenticated control channel awaiting reuse."""

    session: "ClientSession"
    #: the delegated proxy's validity onset and memo half-life horizon;
    #: inside [not_before, fresh_until] a fresh login's delegation memo
    #: replays the *identical* proxy, so resuming this session's
    #: server-side ``delegated`` is bit-for-bit what a fresh handshake
    #: would have installed
    delegated_not_before: float
    fresh_until: float
    client_trust: tuple[int, int]  # (uid, version) at release
    server_trust: tuple[int, int]
    server_credential_fp: str
    released_at: float


class ControlChannelPool:
    """Per-world pool of authenticated GridFTP control channels.

    Real GridFTP clients and Globus Online hold control connections open
    across transfers; this pool gives the simulation the same amortized
    behaviour *without changing any virtual outcome*.  A checkout replays
    exactly the per-step fault checks and clock charges a fresh
    ``connect()`` + AUTH/ADAT/USER login would make (TCP handshake
    1.5 RTT, then three command round trips) and skips only the pure
    wall-clock work: chain walks, RSA verification, proxy delegation and
    PEM codec traffic.  That skip is sound because an entry is reused
    only while every input that work depends on is pinned:

    * same client credential (leaf fingerprint in the key) and the same
      requested username mapping;
    * inside the delegated proxy's memo half-life, where a fresh login's
      delegation memo would reproduce the identical proxy;
    * both trust stores unchanged — (uid, version) recorded at release;
    * same server object behind the listener, same server credential;
    * no host crash or control-channel drop touched either endpoint
      while the channel sat idle (``FaultPlan.endpoint_disrupted``) —
      faults active *now* are caught by the replayed checks themselves.

    Any condition failing silently discards the entry and reports a
    miss; the caller then performs the real handshake, which reproduces
    whatever the fresh world would have done — success or failure — with
    identical charges.  Entries are LRU-bounded; ``REPRO_NO_SESSION_CACHE``
    disables pooling entirely.
    """

    MAX_ENTRIES = 256

    def __init__(self, world: World) -> None:
        self.world = world
        self._entries: dict[tuple, _PooledSession] = {}
        self.reuses = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0
        self._reuse_c = world.metrics.counter(
            "control_channel_pool_reuses_total",
            "Authenticated control channels reused from the pool",
        )
        self._miss_c = world.metrics.counter(
            "control_channel_pool_misses_total",
            "Pool misses (full GSI handshake performed)",
        )
        self._invalidate_c = world.metrics.counter(
            "control_channel_pool_invalidations_total",
            "Pooled channels discarded by fault/expiry/trust invalidation",
        )
        self._size_g = world.metrics.gauge(
            "control_channel_pooled_sessions", "Idle authenticated channels held"
        )

    @classmethod
    def for_world(cls, world: World) -> "ControlChannelPool":
        """The world's pool, created on first use."""
        pool = getattr(world, "_control_channel_pool", None)
        if pool is None:
            pool = cls(world)
            world._control_channel_pool = pool
        return pool

    @staticmethod
    def _key(client: "GridFTPClient", address: tuple[str, int], username: str | None) -> tuple:
        return (
            client.host,
            address,
            client.credential.certificate.fingerprint(),
            username,
        )

    def checkout(
        self,
        client: "GridFTPClient",
        address: tuple[str, int],
        username: str | None,
    ) -> "ClientSession | None":
        """An authenticated session to ``address``, or None (do a real login)."""
        key = self._key(client, address, username)
        entry = self._entries.pop(key, None)
        if entry is None:
            self._miss()
            return None
        world = self.world
        now = world.now
        session = entry.session
        channel = session.channel
        server_session = channel._session
        ok = (
            entry.delegated_not_before <= now <= entry.fresh_until
            and client.credential.valid_at(now)
            and (client.trust.uid, client.trust.version) == entry.client_trust
            and not channel.closed
            and isinstance(server_session, GridFTPSession)
            and not server_session.closed
        )
        if ok:
            server = server_session.server
            listener = world.network.listeners.get(address)
            ok = (
                (server.trust.uid, server.trust.version) == entry.server_trust
                and server.credential.certificate.fingerprint()
                == entry.server_credential_fp
                and listener is not None
                and listener.service is server
                # chaos while the channel sat idle kills the connection;
                # faults active at `now` are re-checked by the replay below
                and not world.faults.endpoint_disrupted(
                    (address[0], client.host), entry.released_at, now
                )
            )
        if not ok:
            self._discard(entry)
            self._miss()
            return None
        # Replay the handshake's network behaviour.  Failures before any
        # clock advance are treated as misses (the caller's real handshake
        # re-raises them identically, still at zero charge); failures after
        # an advance must raise here, at the exact virtual instant the
        # fresh world would have raised.
        network = world.network
        try:
            path = network.path(client.host, address[0])
            network.check_path_up(path)
        except Exception:
            self._discard(entry)
            self._miss()
            return None
        world.clock.advance(1.5 * path.rtt_s)  # TCP handshake, as sockets.connect
        channel._path = path
        try:
            for _ in range(3):  # the AUTH, ADAT, USER round trips
                channel._check_open()
                world.clock.advance(path.rtt_s + channel.proc_time_s)
        except Exception:
            self._discard(entry)
            raise
        session.client = client
        session.authenticated = True
        session.logged_in_as = server_session.account.username
        # The options pipeline is re-charged per lease; a reused session
        # may take the charge-only fast path (see apply_options).
        session._options_applied = None
        session._options_fastpath = True
        self.reuses += 1
        self._reuse_c.inc()
        self._size_g.set(len(self._entries))
        opcount.bump("gsi.handshake.resumed")
        world.emit(
            "globusonline.session.reused",
            "pooled control channel reused",
            endpoint=f"{address[0]}:{address[1]}",
            client=client.host,
            user=client.username,
        )
        return session

    def release(self, session: "ClientSession") -> bool:
        """Park a session for reuse; closes it instead when ineligible."""
        client = session.client
        channel = session.channel
        server_session = channel._session
        now = self.world.now
        eligible = (
            caching_enabled()
            and session.authenticated
            and session.logged_in_as is not None
            and not channel.closed
            and isinstance(server_session, GridFTPSession)
            and not server_session.closed
            and client.credential is not None
            and server_session.delegated is not None
            and client.credential.valid_at(now)
        )
        if not eligible:
            channel.close()
            return False
        leaf = server_session.delegated.chain[0]
        fresh_until = leaf.not_before + (leaf.not_after - leaf.not_before) / 2.0
        if not leaf.not_before <= now <= fresh_until:
            channel.close()
            return False
        server = server_session.server
        key = self._key(client, channel.address, session._pool_username)
        old = self._entries.pop(key, None)
        if old is not None and old.session is not session:
            self._discard(old)
        server_session.reset_for_reuse()
        self._entries[key] = _PooledSession(
            session=session,
            delegated_not_before=leaf.not_before,
            fresh_until=fresh_until,
            client_trust=(client.trust.uid, client.trust.version),
            server_trust=(server.trust.uid, server.trust.version),
            server_credential_fp=server.credential.certificate.fingerprint(),
            released_at=now,
        )
        if len(self._entries) > self.MAX_ENTRIES:
            oldest = next(iter(self._entries))
            self._discard(self._entries.pop(oldest))
            self.evictions += 1
        self._size_g.set(len(self._entries))
        return True

    def invalidate_host(self, host: str) -> int:
        """Drop every pooled channel touching ``host`` (either end)."""
        doomed = [
            k for k in self._entries if k[0] == host or k[1][0] == host
        ]
        for k in doomed:
            self._discard(self._entries.pop(k))
        if doomed:
            self.invalidations += len(doomed)
            self._invalidate_c.inc(len(doomed))
            self._size_g.set(len(self._entries))
        return len(doomed)

    def clear(self) -> int:
        """Close and drop every pooled channel."""
        n = len(self._entries)
        for entry in list(self._entries.values()):
            self._discard(entry)
        self._entries.clear()
        self._size_g.set(0)
        return n

    def stats(self) -> dict[str, int]:
        """Point-in-time counters for ops tables and tests."""
        return {
            "pooled": len(self._entries),
            "reuses": self.reuses,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
        }

    def _miss(self) -> None:
        self.misses += 1
        self._miss_c.inc()

    def _discard(self, entry: _PooledSession) -> None:
        try:
            entry.session.channel.close()
        except Exception:
            pass


class GridFTPClient:
    """A user's GridFTP client on a particular host."""

    def __init__(
        self,
        world: World,
        host: str,
        credential: Credential | None = None,
        trust: TrustStore | None = None,
        local_storage: DataStorageInterface | None = None,
        username: str = "user",
    ) -> None:
        self.world = world
        self.host = host
        self.credential = credential
        self.trust = trust or TrustStore()
        self.local_storage = local_storage
        self.username = username
        self.engine = TransferEngine.for_world(world)
        # data_channel_security() memo: (inputs..., result) — see method
        self._dcs_memo: tuple | None = None

    # -- connection ----------------------------------------------------------

    def connect(
        self,
        server: GridFTPServer | tuple[str, int],
        login: bool = True,
        username: str | None = None,
        pooled: bool = False,
    ) -> "ClientSession":
        """Open a control channel; optionally authenticate and log in.

        With ``pooled=True`` an idle authenticated channel to the same
        endpoint (same credential, same username mapping) is reused from
        the world's :class:`ControlChannelPool` when one is available,
        and the returned session goes back to the pool on
        :meth:`ClientSession.release` instead of closing.
        """
        address = server.address if isinstance(server, GridFTPServer) else server
        if pooled and login and self.credential is not None and caching_enabled():
            hit = ControlChannelPool.for_world(self.world).checkout(
                self, address, username
            )
            if hit is not None:
                return hit
        channel = ControlChannel(self.world.network, self.host, address)
        session = ClientSession(self, channel)
        session._pooled = pooled
        session._pool_username = username
        if login:
            session.login(username=username)
        return session

    # -- local data-channel posture --------------------------------------------

    def data_channel_security(self, mode: DCAUMode) -> DataChannelSecurity:
        """The client side of a two-party data channel."""
        # pure function of (mode, credential, trust) — memoize per client
        # so batch jobs reuse one posture object (and its _side_key memo)
        m = self._dcs_memo
        if (
            m is not None
            and m[0] is mode
            and m[1] is self.credential
            and m[2] is self.trust
            and m[3] == self.trust.version
        ):
            return m[4]
        expected = self.credential.identity if self.credential else None
        sec = DataChannelSecurity(
            mode=mode,
            credential=self.credential,
            trust=self.trust,
            expected_identity=expected,
            endpoint_name=f"client@{self.host}",
        )
        self._dcs_memo = (mode, self.credential, self.trust, self.trust.version, sec)
        return sec


def _options_server_state(options: TransferOptions) -> list[tuple[str, object]] | None:
    """The server-session mutations the options pipeline would make.

    Mirrors ``_cmd_type``/``_cmd_mode``/``_cmd_opts``/``_cmd_prot``/
    ``_cmd_dcau``/``_cmd_sbuf`` for well-formed options.  Returns None
    whenever any value could draw a protocol error from the real
    handlers (non-int parallelism, missing DCAU subject, ...), so the
    caller runs the genuine pipeline and errors surface as uncached.
    """
    if type(options.parallelism) is not int:
        return None
    if options.tcp_window_bytes and type(options.tcp_window_bytes) is not int:
        return None
    if not isinstance(options.protection, Protection):
        return None
    if not isinstance(options.dcau, DCAUMode):
        return None
    updates: list[tuple[str, object]] = [
        ("type_", "I"),
        ("mode", "E"),
        ("parallelism", max(1, options.parallelism)),
        ("protection", options.protection),
    ]
    if options.dcau is DCAUMode.SUBJECT:
        if not options.dcau_subject:
            return None  # "DCAU S" with no subject is a 501 on the wire
        try:
            subject = DistinguishedName.parse(str(options.dcau_subject))
        except Exception:
            return None
        updates.append(("dcau_mode", DCAUMode.SUBJECT))
        updates.append(("dcau_subject", subject))
    else:
        updates.append(("dcau_mode", options.dcau))
        updates.append(("dcau_subject", None))
    if options.tcp_window_bytes:
        updates.append(("tcp_window", options.tcp_window_bytes))
    return updates


class ClientSession:
    """A logged-in control-channel session, with high-level operations."""

    def __init__(self, client: GridFTPClient, channel: ControlChannel) -> None:
        self.client = client
        self.channel = channel
        self.world = client.world
        self.authenticated = False
        self.logged_in_as: str | None = None
        self._options_applied: TransferOptions | None = None
        # pool bookkeeping (set by GridFTPClient.connect / pool checkout)
        self._pooled = False
        self._pool_username: str | None = None
        self._options_fastpath = False

    # -- low-level helpers ---------------------------------------------------

    @property
    def server_session(self) -> GridFTPSession:
        """The server-side session object (introspection)."""
        session = self.channel.session
        assert isinstance(session, GridFTPSession)
        return session

    @property
    def server(self) -> GridFTPServer:
        """The GridFTP server this session talks to."""
        return self.server_session.server

    def command(self, line: str) -> Reply:
        """Send one command; return the final reply (raise on 4xx/5xx)."""
        lines = self.channel.request(line)
        if not lines:
            raise ProtocolError(f"no reply to {line!r}")
        return raise_for_reply(Reply.parse(lines[-1]))

    def command_lines(self, line: str) -> list[str]:
        """Send one command; return every reply line (multiline replies)."""
        lines = self.channel.request(line)
        raise_for_reply(Reply.parse(lines[-1]))
        return lines

    # -- the GSI handshake -------------------------------------------------------

    def login(self, username: str | None = None) -> str:
        """AUTH/ADAT mutual authentication, then USER mapping.

        Returns the local account name the server mapped us to.
        """
        client = self.client
        if client.credential is None:
            raise AuthenticationError(
                f"client {client.username!r} has no credential to authenticate with"
            )
        opcount.bump("gsi.handshake.full")
        reply = self.command("AUTH GSSAPI")
        # the 334 carries the server's certificate chain; validate it
        # against *our* trust roots (the client half of mutual auth).
        if not reply.text.startswith("ADAT="):
            raise AuthenticationError(f"unexpected AUTH reply: {reply}")
        chain = _parse_cert_chain(b64decode_str(reply.text[len("ADAT=") :]))
        try:
            validate_chain(chain, client.trust, self.world.now)
        except Exception as exc:
            raise AuthenticationError(
                f"client rejected server certificate {chain[0].subject}: {exc}"
            ) from exc
        # delegate a proxy to the server and present it
        delegated = delegate_credential(
            client.credential, self.world.clock, self.world.rng.python("delegation")
        )
        # the b64 blob is a pure function of the (immutable) credential;
        # replayed delegations present the identical blob without re-encoding
        blob = delegated.__dict__.get("_adat_blob")
        if blob is None:
            blob = b64encode_str(delegated.to_pem(include_key=True).encode("ascii"))
            object.__setattr__(delegated, "_adat_blob", blob)
        user_arg = username if username is not None else ":globus-mapping:"
        try:
            self.command(f"ADAT {blob}")
            self.authenticated = True
            self.command(f"USER {user_arg}")
        except ProtocolError as exc:
            if exc.code in (530, 535):
                raise AuthenticationError(str(exc)) from exc
            raise
        self.logged_in_as = self.server_session.account.username
        return self.logged_in_as

    # -- session parameter helpers ---------------------------------------------------

    def apply_options(self, options: TransferOptions) -> None:
        """Push transfer options to the server (idempotent per option set)."""
        if self._options_applied == options:
            return
        commands = ["TYPE I", "MODE E", f"OPTS RETR Parallelism={options.parallelism};"]
        commands.append("PBSZ 0")
        commands.append(f"PROT {options.protection.value}")
        if options.dcau is DCAUMode.SUBJECT and options.dcau_subject:
            commands.append(f"DCAU S {options.dcau_subject}")
        else:
            commands.append(f"DCAU {options.dcau.value}")
        if options.tcp_window_bytes:
            commands.append(f"SBUF {options.tcp_window_bytes}")
        if self._options_fastpath:
            # Charge-only replay for a pooled session: every command in
            # this pipeline is a deterministic state-setter on the server
            # session (TYPE/MODE/OPTS/PBSZ/PROT/DCAU/SBUF), so we apply
            # the identical state mutations directly and advance the
            # clock by exactly what ControlChannel.pipeline would charge.
            # Anything malformed falls through to the real pipeline so
            # protocol errors surface exactly as uncached.
            self._options_fastpath = False
            updates = _options_server_state(options)
            if updates is not None:
                channel = self.channel
                channel._check_open()
                self.world.clock.advance(
                    channel.rtt_s + channel.proc_time_s * len(commands)
                )
                server_session = self.server_session
                for attr, value in updates:
                    setattr(server_session, attr, value)
                self._options_applied = options
                return
        for lines in self.channel.pipeline(commands):
            raise_for_reply(Reply.parse(lines[-1]))
        self._options_applied = options

    def dcsc(self, blob_or_default: str) -> Reply:
        """Send a DCSC command: a P blob, or "D" to revert."""
        if blob_or_default.upper() == "D":
            return self.command("DCSC D")
        return self.command(f"DCSC P {blob_or_default}")

    # -- namespace convenience ------------------------------------------------------

    def pwd(self) -> str:
        """Current working directory (PWD)."""
        reply = self.command("PWD")
        return reply.text.split('"')[1]

    def cwd(self, path: str) -> None:
        """Change working directory (CWD)."""
        self.command(f"CWD {path}")

    def mkdir(self, path: str) -> None:
        """Create a directory (MKD)."""
        self.command(f"MKD {path}")

    def delete(self, path: str) -> None:
        """Remove a file (DELE)."""
        self.command(f"DELE {path}")

    def rename(self, old: str, new: str) -> None:
        """Move a file (RNFR/RNTO)."""
        self.command(f"RNFR {old}")
        self.command(f"RNTO {new}")

    def size(self, path: str) -> int:
        """Remote file size in bytes (SIZE)."""
        return int(self.command(f"SIZE {path}").text)

    def checksum(self, path: str, algorithm: str = "sha256") -> str:
        """Server-side checksum of a file (CKSM)."""
        return self.command(f"CKSM {algorithm} {path}").text

    def list_dir(self, path: str = "") -> list[str]:
        """Names in a directory (LIST)."""
        lines = self.command_lines(f"LIST {path}".strip())
        return [l.strip() for l in lines[1:-1]]

    def features(self) -> list[str]:
        """The server's FEAT extension labels."""
        lines = self.command_lines("FEAT")
        return [l.strip() for l in lines[1:-1]]

    def supports(self, feature: str) -> bool:
        """True if the server advertises ``feature`` in FEAT."""
        return feature.upper() in {f.upper() for f in self.features()}

    def quit(self) -> None:
        """Close the session (QUIT)."""
        self.command("QUIT")
        self.channel.close()

    def release(self) -> None:
        """Give the session back: to the pool if pooled, else close it.

        Pool-ineligible sessions (failed auth, chaos-closed channel,
        credential past its delegation half-life) are closed outright,
        exactly as a non-pooled caller would.
        """
        if self._pooled and caching_enabled():
            ControlChannelPool.for_world(self.world).release(self)
        else:
            self.channel.close()

    # -- data port negotiation ----------------------------------------------------------

    def passive(self) -> tuple[str, int]:
        """PASV; returns the server's data address."""
        reply = self.command("PASV")
        addr = reply.text.split("(", 1)[1].rstrip(")")
        host, _, port_s = addr.rpartition(":")
        return (host, int(port_s))

    def striped_passive(self) -> list[tuple[str, int]]:
        """SPAS; returns one data address per stripe."""
        lines = self.command_lines("SPAS")
        out: list[tuple[str, int]] = []
        for line in lines[1:-1]:
            host, _, port_s = line.strip().rpartition(":")
            out.append((host, int(port_s)))
        return out

    def port(self, addr: tuple[str, int]) -> None:
        """Tell the server where to connect (PORT)."""
        self.command(f"PORT {addr[0]}:{addr[1]}")

    def striped_port(self, addrs: list[tuple[str, int]]) -> None:
        """Striped PORT (SPOR) with one address per stripe."""
        arg = " ".join(f"{h}:{p}" for h, p in addrs)
        self.command(f"SPOR {arg}")

    def rest(self, ranges: ByteRangeSet) -> None:
        """Send a restart marker (REST) with the held ranges."""
        self.command(f"REST {format_restart_marker(ranges)}")

    # -- whole-file operations ------------------------------------------------------------

    def get(
        self,
        remote_path: str,
        local_path: str,
        options: TransferOptions | None = None,
        restart: ByteRangeSet | None = None,
    ) -> TransferResult:
        """RETR ``remote_path`` into the client's local storage."""
        client = self.client
        if client.local_storage is None:
            raise TransferError("client has no local storage configured")
        options = options or TransferOptions()
        self.apply_options(options)
        if restart is not None:
            self.rest(restart)  # the ranges we already hold
        self.command(f"RETR {remote_path}")
        intent = self.server_session.take_intent()
        assert intent.data is not None
        source = SourceSpec(
            hosts=self.server.dtp_hosts,
            data=intent.data,
            security=self.server_session.data_channel_security(),
            needed=intent.needed,
        )
        sink = client.local_storage.open_write(
            local_path, 0, intent.data.size, resume=restart is not None
        )
        sink_spec = SinkSpec(
            hosts=(client.host,),
            sink=sink,
            security=client.data_channel_security(options.dcau),
        )
        result = client.engine.execute(source, sink_spec, options)
        self.server.record_transfer(result, "retrieve", intent.path,
                                    mode=self.server_session.mode)
        return result

    def put(
        self,
        local_path: str,
        remote_path: str,
        options: TransferOptions | None = None,
        restart: ByteRangeSet | None = None,
    ) -> TransferResult:
        """STOR the client's local file to ``remote_path``."""
        client = self.client
        if client.local_storage is None:
            raise TransferError("client has no local storage configured")
        options = options or TransferOptions()
        self.apply_options(options)
        data = client.local_storage.open_read(local_path, 0)
        needed = None
        if restart is not None:
            needed = restart.complement(data.size)
            self.rest(restart)
        self.passive()
        self.command(f"STOR {remote_path}")
        intent = self.server_session.take_intent()
        sink = self.server_session.make_sink(intent, data.size)
        source = SourceSpec(
            hosts=(client.host,),
            data=data,
            security=client.data_channel_security(options.dcau),
            needed=needed,
        )
        sink_spec = SinkSpec(
            hosts=self.server.dtp_hosts,
            sink=sink,
            security=self.server_session.data_channel_security(),
        )
        result = client.engine.execute(source, sink_spec, options)
        self.server.record_transfer(result, "store", intent.path,
                                    mode=self.server_session.mode)
        return result

    def get_partial(
        self,
        remote_path: str,
        offset: int,
        length: int,
        local_path: str,
        options: TransferOptions | None = None,
    ) -> TransferResult:
        """ERET: retrieve only [offset, offset+length) of a remote file.

        The local file is created at the remote file's full size with
        just that window populated (the partial persists, so later
        windows can fill in around it).
        """
        client = self.client
        if client.local_storage is None:
            raise TransferError("client has no local storage configured")
        options = options or TransferOptions()
        self.apply_options(options)
        size = self.size(remote_path)
        self.command(f"ERET P {offset} {length} {remote_path}")
        intent = self.server_session.take_intent()
        assert intent.data is not None
        source = SourceSpec(
            hosts=self.server.dtp_hosts,
            data=intent.data,
            security=self.server_session.data_channel_security(),
            needed=intent.needed,
        )
        sink = client.local_storage.open_write(local_path, 0, size, resume=True)
        sink_spec = SinkSpec(
            hosts=(client.host,),
            sink=sink,
            security=client.data_channel_security(options.dcau),
        )
        # a window transfer cannot verify the whole-file fingerprint;
        # finalize only once the accumulated windows cover the file.
        complete = sink.received.union(
            intent.needed if intent.needed is not None else sink.received
        ).covers(size)
        result = client.engine.execute(source, sink_spec, options,
                                       finalize=complete)
        self.server.record_transfer(result, "retrieve-partial", intent.path,
                                    mode=self.server_session.mode)
        return result

    def get_many(
        self,
        paths: list[tuple[str, str]],
        options: TransferOptions | None = None,
    ) -> list[TransferResult]:
        """Fetch many (remote, local) files.

        Honours the two lots-of-small-files optimizations from the paper:

        * **pipelining** — all RETR commands stream back-to-back in one
          round trip instead of one round trip each;
        * **concurrency** — ``options.concurrency`` files move at once;
          the elapsed virtual time is the concurrent makespan.

        Data channels are mode E cached: only the first file pays
        channel setup.
        """
        client = self.client
        if client.local_storage is None:
            raise TransferError("client has no local storage configured")
        options = options or TransferOptions()
        self.apply_options(options)

        intents: list[tuple[TransferIntent, str]] = []
        if options.pipelining:
            batches = self.channel.pipeline([f"RETR {r}" for r, _ in paths])
            for (remote, local), lines in zip(paths, batches):
                raise_for_reply(Reply.parse(lines[-1]))
                intents.append((self.server_session.take_intent(), local))
        else:
            for remote, local in paths:
                self.command(f"RETR {remote}")
                intents.append((self.server_session.take_intent(), local))

        results: list[TransferResult] = []
        k = max(1, options.concurrency)
        lane_time = [0.0] * k
        for i, (intent, local) in enumerate(intents):
            assert intent.data is not None
            source = SourceSpec(
                hosts=self.server.dtp_hosts,
                data=intent.data,
                security=self.server_session.data_channel_security(),
            )
            sink = client.local_storage.open_write(local, 0, intent.data.size)
            sink_spec = SinkSpec(
                hosts=(client.host,),
                sink=sink,
                security=client.data_channel_security(options.dcau),
            )
            result = client.engine.execute(
                source,
                sink_spec,
                options,
                charge_setup=(i < k),  # one channel set per lane
                advance_clock=False,
            )
            lane = min(range(k), key=lane_time.__getitem__)
            lane_time[lane] += result.duration_s
            results.append(result)
            self.server.record_transfer(result, "retrieve", intent.path,
                                        mode=self.server_session.mode)
        self.world.advance(max(lane_time) if lane_time else 0.0)
        return results


#: parsed server AUTH banners — every session to one server presents the
#: same chain bytes, and certificates are immutable, so re-parsing is
#: indistinguishable from replaying (bounded; keys are the raw PEM bytes)
_CHAIN_MEMO: dict[bytes, tuple[Certificate, ...]] = {}
_CHAIN_MEMO_MAX = 1024


def _parse_cert_chain(pem_bytes: bytes) -> list[Certificate]:
    """Certificates from concatenated PEM (server AUTH reply)."""
    chain = _CHAIN_MEMO.get(pem_bytes)
    if chain is None:
        text = pem_bytes.decode("ascii", errors="replace")
        chain = tuple(Certificate.from_der(der)
                      for label, der in pem_decode_all(text)
                      if label == "CERTIFICATE")
        if len(_CHAIN_MEMO) < _CHAIN_MEMO_MAX:
            _CHAIN_MEMO[pem_bytes] = chain
    return list(chain)


def globus_url_copy(
    world: World,
    src_url: str,
    dst_url: str,
    client: GridFTPClient,
    options: TransferOptions | None = None,
) -> TransferResult:
    """The command-line workhorse from paper Section IV.E.

    Supports ``gsiftp -> file`` (get), ``file -> gsiftp`` (put), and
    ``gsiftp -> gsiftp`` (third-party transfer).
    """
    src = GridFTPUrl.parse(src_url)
    dst = GridFTPUrl.parse(dst_url)
    options = options or TransferOptions()
    if src.scheme == "gsiftp" and dst.scheme == "file":
        session = client.connect((src.host, src.port))
        try:
            return session.get(src.path, dst.path, options)
        finally:
            session.quit()
    if src.scheme == "file" and dst.scheme == "gsiftp":
        session = client.connect((dst.host, dst.port))
        try:
            return session.put(src.path, dst.path, options)
        finally:
            session.quit()
    if src.scheme == "gsiftp" and dst.scheme == "gsiftp":
        from repro.gridftp.third_party import third_party_transfer

        src_session = client.connect((src.host, src.port))
        dst_session = client.connect((dst.host, dst.port))
        try:
            return third_party_transfer(
                src_session, src.path, dst_session, dst.path, options
            )
        finally:
            src_session.quit()
            dst_session.quit()
    raise ProtocolError(f"unsupported URL pair {src_url!r} -> {dst_url!r}", code=501)
