"""FTP reply codes and formatting (RFC 959 / RFC 2228 / GridFTP).

Replies are single lines ``"<code> <text>"``; the helpers classify them
the way a client PI must (preliminary/completion/intermediate/transient/
permanent) and carry the codes this implementation actually uses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProtocolError


@dataclass(frozen=True)
class Reply:
    """One control-channel reply."""

    code: int
    text: str

    def __post_init__(self) -> None:
        if not 100 <= self.code <= 659:
            raise ProtocolError(f"invalid reply code {self.code}")

    def __str__(self) -> str:
        return f"{self.code} {self.text}"

    # -- RFC 959 categories ------------------------------------------------

    @property
    def is_preliminary(self) -> bool:
        """1xx: action started, expect another reply."""
        return 100 <= self.code < 200

    @property
    def is_completion(self) -> bool:
        """2xx: action completed successfully."""
        return 200 <= self.code < 300

    @property
    def is_intermediate(self) -> bool:
        """3xx: send more information."""
        return 300 <= self.code < 400

    @property
    def is_transient_error(self) -> bool:
        """4xx: try again later."""
        return 400 <= self.code < 500

    @property
    def is_permanent_error(self) -> bool:
        """5xx: do not repeat as-is."""
        return 500 <= self.code < 600

    @property
    def is_error(self) -> bool:
        """True for any 4xx/5xx reply."""
        return self.code >= 400

    @staticmethod
    def parse(line: str) -> "Reply":
        """Parse ``"<code> <text>"``."""
        reply = _PARSE_MEMO.get(line)
        if reply is not None:
            return reply
        head, _, text = line.partition(" ")
        try:
            code = int(head)
        except ValueError:
            raise ProtocolError(f"malformed reply line: {line!r}") from None
        reply = Reply(code=code, text=text)
        if len(_PARSE_MEMO) < _PARSE_MEMO_MAX:
            _PARSE_MEMO[line] = reply
        return reply


#: parsed-reply memo — the fixed replies ("200 Command okay.", ...) are
#: re-parsed by every client PI round trip; Reply is frozen, so shared
#: instances are observationally identical.  Bounded so one-off lines
#: (sizes, addresses) cannot grow it without limit.
_PARSE_MEMO: dict[str, Reply] = {}
_PARSE_MEMO_MAX = 4096


# -- the codes this server emits ------------------------------------------------

BANNER = Reply(220, "GridFTP Server (repro) ready.")
OPENING_DATA = Reply(150, "Opening BINARY mode data connection.")
COMMAND_OK = Reply(200, "Command okay.")
FEATURES_FOLLOW = Reply(211, "Extensions supported")
SIZE_FMT = "213 {size}"
TRANSFER_COMPLETE = Reply(226, "Transfer complete.")
PASSIVE_FMT = "227 Entering Passive Mode ({addr})"
LOGGED_IN = Reply(230, "User logged in, proceed.")
SECURITY_OK = Reply(232, "GSSAPI authentication succeeded.")
SECURITY_CONTINUE = Reply(334, "Using authentication type GSSAPI; ADAT must follow.")
NEED_MORE_INFO = Reply(350, "Requested file action pending further information.")
SERVICE_UNAVAILABLE = Reply(421, "Service not available, closing control connection.")
TRANSFER_ABORTED = Reply(426, "Connection closed; transfer aborted.")
UNRECOGNIZED = Reply(500, "Syntax error, command unrecognized.")
BAD_PARAMETER = Reply(501, "Syntax error in parameters or arguments.")
NOT_LOGGED_IN = Reply(530, "Not logged in.")
FILE_UNAVAILABLE_FMT = "550 {path}: {reason}"
GOODBYE = Reply(221, "Goodbye.")


def file_unavailable(path: str, reason: str = "No such file or directory") -> Reply:
    """A 550 with the offending path."""
    return Reply(550, f"{path}: {reason}")


def raise_for_reply(reply: Reply) -> Reply:
    """Client-side helper: raise :class:`ProtocolError` on 4xx/5xx."""
    if reply.is_error:
        raise ProtocolError(str(reply), code=reply.code)
    return reply
