"""Striped GridFTP servers.

Figure 2: "a striped server might use one server PI on the head node of
a cluster and a DTP on all other nodes."  The head node answers the
control channel; SPAS/SPOR negotiate one data address per stripe node,
and the transfer engine aggregates the per-stripe flows' bandwidth —
this is how a cluster of 1 Gb/s data movers fills a 10 Gb/s WAN.

The head node coordinates its DTP nodes over an internal control
channel.  Whether that channel is secured matters: GridFTP-Lite's third
limitation is "no security exists on the communication channel between
the control node and the data mover node in the striped GridFTP server"
(Section III.B).  We record every internal message with its security
flag so tests and benches can audit it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import NetworkError
from repro.gridftp.server import GridFTPServer
from repro.pki.credential import Credential
from repro.pki.validation import TrustStore
from repro.storage.dsi import DataStorageInterface

if TYPE_CHECKING:  # pragma: no cover
    from repro.auth.accounts import AccountDatabase
    from repro.gsi.authz import AuthorizationCallout
    from repro.sim.world import World


class StripedGridFTPServer(GridFTPServer):
    """A server PI on a head node fronting DTPs on stripe nodes.

    All stripe nodes share one DSI (a parallel filesystem in real
    deployments).  ``internal_channel_secure`` reflects whether the
    PI→DTP coordination traffic is authenticated/encrypted; GSI-based
    deployments secure it, SSH-based GridFTP-Lite cannot.
    """

    def __init__(
        self,
        world: "World",
        head_host: str,
        stripe_hosts: list[str],
        credential: Credential,
        trust: TrustStore,
        authz: "AuthorizationCallout",
        accounts: "AccountDatabase",
        dsi: DataStorageInterface,
        port: int = GridFTPServer.DEFAULT_PORT,
        dcsc_enabled: bool = True,
        usage_reporting: bool = True,
        internal_channel_secure: bool = True,
        name: str | None = None,
    ) -> None:
        if not stripe_hosts:
            raise NetworkError("a striped server needs at least one stripe host")
        super().__init__(
            world,
            head_host,
            credential,
            trust,
            authz,
            accounts,
            dsi,
            port=port,
            dcsc_enabled=dcsc_enabled,
            usage_reporting=usage_reporting,
            name=name or f"striped-gridftp@{head_host}",
        )
        for h in stripe_hosts:
            world.network.host(h)  # validate they exist
        self.stripe_hosts = tuple(stripe_hosts)
        self.dtp_hosts = self.stripe_hosts
        self.internal_channel_secure = internal_channel_secure

    @property
    def stripe_count(self) -> int:
        """Number of stripe (DTP) nodes."""
        return len(self.stripe_hosts)

    def internal_message(self, dtp_host: str, message: str) -> None:
        """One PI→DTP coordination message (logged with its security flag)."""
        if dtp_host not in self.stripe_hosts:
            raise NetworkError(f"{dtp_host} is not a stripe node of {self.name}")
        self.world.emit(
            "gridftp.striped.internal",
            message,
            server=self.name,
            dtp=dtp_host,
            secure=self.internal_channel_secure,
        )

    def dispatch_stripe_plan(self, paths: list[str]) -> None:
        """Tell each DTP which stripe it serves (round-robin by index)."""
        for i, host in enumerate(self.stripe_hosts):
            self.internal_message(host, f"serve stripe {i}/{self.stripe_count}")
        for p in paths:
            self.internal_message(self.stripe_hosts[0], f"open {p}")
