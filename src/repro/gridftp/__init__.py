"""Globus GridFTP: protocol, server, client, DTP, striping, DCAU, DCSC.

The full data-movement stack of paper Section II, plus the Section V
protocol extension (DCSC).  Layout mirrors the architecture of Figure 2:

* control channel: :mod:`replies`, :mod:`commands`, :mod:`server`
  (server PI), :mod:`client` (client PI);
* data channel: :mod:`mode_e` (extended block mode framing),
  :mod:`restart` / :mod:`perf` (markers), :mod:`dtp` (data transfer
  process), :mod:`transfer` (the engine that binds the protocol to the
  network model), :mod:`striped` (striped servers);
* security: :mod:`dcau` (data channel authentication), :mod:`dcsc`
  (the Data Channel Security Context command);
* orchestration: :mod:`third_party`, :mod:`tuning`.
"""

from repro.gridftp.replies import Reply
from repro.gridftp.restart import ByteRangeSet, format_restart_marker, parse_restart_marker
from repro.gridftp.transfer import TransferOptions, TransferResult
from repro.gridftp.server import GridFTPServer
from repro.gridftp.client import GridFTPClient, GridFTPUrl, globus_url_copy
from repro.gridftp.striped import StripedGridFTPServer
from repro.gridftp.dcau import DCAUMode
from repro.gridftp.dcsc import encode_dcsc_blob, decode_dcsc_blob

__all__ = [
    "Reply",
    "ByteRangeSet",
    "format_restart_marker",
    "parse_restart_marker",
    "TransferOptions",
    "TransferResult",
    "GridFTPServer",
    "GridFTPClient",
    "GridFTPUrl",
    "globus_url_copy",
    "StripedGridFTPServer",
    "DCAUMode",
    "encode_dcsc_blob",
    "decode_dcsc_blob",
]
