"""The GridFTP server protocol interpreter (server PI).

One :class:`GridFTPServer` listens on a control port; each accepted
connection gets a :class:`GridFTPSession` implementing the command state
machine: RFC 2228 security (AUTH/ADAT), the authorization callout and
setuid (Section II.C), transfer parameter commands (TYPE/MODE/OPTS/
PBSZ/PROT/DCAU/SBUF/REST), data port negotiation (PASV/PORT and striped
SPAS/SPOR), transfer verbs (RETR/STOR), and the Section V DCSC command.

Deviation from the wire protocol, documented here once: directory
listings (LIST) return their lines inline in the reply rather than over
a data channel — the simulation gains nothing from shipping listings
through the transfer engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.errors import (
    AuthorizationError,
    CertificateError,
    PamError,
    ProtocolError,
    StorageError,
)
from repro.gridftp import replies as R
from repro.gridftp.commands import (
    _PARSE_MEMO,
    feature_labels,
    known_verbs,
    lookup,
    parse_command,
)
from repro.gridftp.dcau import DataChannelSecurity, DCAUMode
from repro.gridftp.dcsc import DcscContext, decode_dcsc_blob
from repro.gridftp.restart import ByteRangeSet, parse_restart_marker
from repro.gridftp.transfer import TransferResult
from repro.net.sockets import Listener, ServerSession, Service, listen, listen_ephemeral, close_listener
from repro.pki.credential import Credential
from repro.pki.dn import DistinguishedName
from repro.pki.validation import TrustStore, ValidationResult, validate_chain
from repro.storage.data import FileData
from repro.storage.dsi import DataStorageInterface, WriteSink
from repro.util.encoding import b64decode_str, b64encode_str
from repro.xio.drivers import Protection

if TYPE_CHECKING:  # pragma: no cover
    from repro.auth.accounts import Account, AccountDatabase
    from repro.gsi.authz import AuthorizationCallout
    from repro.sim.world import World


@dataclass
class TransferIntent:
    """What a RETR or STOR set up, awaiting the data channel."""

    direction: str  # "send" | "recv"
    path: str
    data: FileData | None = None  # send
    sink: WriteSink | None = None  # recv
    needed: ByteRangeSet | None = None  # restart ranges (send side)


class _DataPortService(Service):
    """Placeholder service bound to a PASV/SPAS data port.

    Nothing connects through the socket layer — the transfer engine is
    handed endpoints directly — but third-party orchestration resolves a
    PORT address back to the owning session through this object.
    """

    def __init__(self, session: "GridFTPSession") -> None:
        self.session = session

    def open_session(self, client_host: str) -> ServerSession:  # pragma: no cover
        """Accept one connection (Service interface)."""
        raise ProtocolError("data ports do not accept control sessions")


class GridFTPServer(Service):
    """One Globus GridFTP server deployment."""

    DEFAULT_PORT = 2811

    def __init__(
        self,
        world: "World",
        host: str,
        credential: Credential,
        trust: TrustStore,
        authz: "AuthorizationCallout",
        accounts: "AccountDatabase",
        dsi: DataStorageInterface,
        port: int = DEFAULT_PORT,
        dcsc_enabled: bool = True,
        usage_reporting: bool = True,
        name: str | None = None,
    ) -> None:
        self.world = world
        self.host = host
        self.port = port
        self.credential = credential
        self.trust = trust
        self.authz = authz
        self.accounts = accounts
        self.dsi = dsi
        self.dcsc_enabled = dcsc_enabled
        self.usage_reporting = usage_reporting
        self.name = name or f"gridftp@{host}"
        self.sessions: list[GridFTPSession] = []
        self._listener: Listener | None = None
        #: stripe data-mover hosts; plain servers move data themselves
        self.dtp_hosts: tuple[str, ...] = (host,)
        # bound metric children, resolved once per labelset: every
        # control-channel command and usage record goes through these
        self._cmd_counters: dict[str, Any] = {}
        self._bytes_counters: dict[tuple[str, str], Any] = {}

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "GridFTPServer":
        """Bind the control port."""
        self._listener = listen(self.world.network, self.host, self.port, self)
        self.world.emit("gridftp.server.start", "server listening", server=self.name,
                        address=f"{self.host}:{self.port}", dcsc=self.dcsc_enabled)
        return self

    def stop(self) -> None:
        """Release the listening port."""
        if self._listener is not None:
            close_listener(self.world.network, self._listener)
            self._listener = None

    @property
    def address(self) -> tuple[str, int]:
        """The (host, port) this service listens on."""
        return (self.host, self.port)

    def open_session(self, client_host: str) -> "GridFTPSession":
        """Accept one connection (Service interface)."""
        session = GridFTPSession(self, client_host)
        self.sessions.append(session)
        return session

    # -- usage telemetry (Figure 1 pipeline) -----------------------------------

    def record_transfer(
        self, result: TransferResult, direction: str, path: str, mode: str = "E"
    ) -> None:
        """Emit a usage record, if this deployment enabled reporting.

        Figure 1's caveat applies: "these numbers are based on reporting
        from GridFTP servers that choose to enable reporting".  The
        ``bytes_transferred_total`` counter is always fed — it is this
        deployment's own telemetry, not the opt-in usage pipeline.
        """
        child = self._bytes_counters.get((direction, mode))
        if child is None:
            child = self._bytes_counters[(direction, mode)] = self.world.metrics.counter(
                "bytes_transferred_total",
                "Payload bytes in server-reported transfers",
                labelnames=("direction", "mode"),
            ).labels(direction=direction, mode=mode)
        child.inc(result.nbytes)
        if not self.usage_reporting:
            return
        self.world.emit(
            "usage.record",
            "transfer usage report",
            server=self.name,
            host=self.host,
            nbytes=result.nbytes,
            duration=result.duration_s,
            direction=direction,
            path=path,
            streams=result.streams,
            stripes=result.stripes,
        )


class GridFTPSession(ServerSession):
    """Per-connection server PI state machine."""

    def __init__(self, server: GridFTPServer, client_host: str) -> None:
        self.server = server
        self.client_host = client_host
        self.world = server.world
        # security state
        self.auth_pending = False
        self.peer: ValidationResult | None = None
        self.delegated: Credential | None = None
        self.account: "Account | None" = None
        # session parameters
        self.cwd = "/"
        self.type_ = "A"
        self.mode = "S"
        self.parallelism = 1
        self.protection = Protection.CLEAR
        self.dcau_mode = DCAUMode.SELF
        self.dcau_subject: DistinguishedName | None = None
        self.tcp_window: int | None = None
        self.restart: ByteRangeSet | None = None
        self.dcsc: DcscContext | None = None
        # data channel negotiation
        self.passive_listeners: list[Listener] = []
        self.remote_ports: list[tuple[str, int]] = []
        self.pending: list[TransferIntent] = []
        self._rnfr: str | None = None
        self._stor_resume = False
        self.closed = False
        self.banner = str(R.BANNER)
        # data_channel_security() memo: (inputs..., result) — see method
        self._dcs_memo: tuple | None = None

    # -- dispatch -----------------------------------------------------------------

    def handle(self, line: str) -> list[str]:
        """Process one command line; return reply lines."""
        if self.closed:
            return [str(R.SERVICE_UNAVAILABLE)]
        # inlined parse memo: the hit path is pure dict lookup, and every
        # drain command pays it (the function call was measurable)
        cmd = _PARSE_MEMO.get(line)
        if cmd is None:
            try:
                cmd = parse_command(line)
            except ProtocolError:
                return [str(R.UNRECOGNIZED)]
        spec = lookup(cmd.verb)
        world = self.world
        server_name = self.server.name
        with world.tracer.span(
            "gridftp.command", verb=cmd.verb, server=server_name
        ):
            world.emit("gridftp.command", "command", server=server_name,
                       verb=cmd.verb, client=self.client_host)
            counter = self.server._cmd_counters.get(cmd.verb)
            if counter is None:
                counter = self.server._cmd_counters[cmd.verb] = self.world.metrics.counter(
                    "gridftp_commands_total", "Control-channel commands dispatched",
                    labelnames=("verb",),
                ).labels(verb=cmd.verb)
            counter.inc()
            if spec is None:
                return [str(R.UNRECOGNIZED)]
            if spec.requires_auth and self.account is None:
                return [str(R.NOT_LOGGED_IN)]
            handler = _HANDLERS.get(cmd.verb)
            if handler is None:
                return [str(R.UNRECOGNIZED)]
            try:
                return handler(self, cmd.arg)
            except ProtocolError as exc:
                return [f"{exc.code} {exc}"]
            except StorageError as exc:
                return [str(R.file_unavailable(cmd.arg or self.cwd, str(exc)))]

    def close(self) -> None:
        """Tear down per-connection state."""
        self._release_data_ports()
        self.closed = True

    def reset_for_reuse(self) -> None:
        """Restore just-logged-in defaults, keeping the security state.

        The control-channel pool parks sessions between jobs; a reused
        session must present exactly the state a freshly authenticated
        one would (transfer parameters at their defaults, no pending
        intents or data ports, cwd back at the account home) so that the
        client's option pipeline and data-port negotiation replay
        identically.  ``peer``/``delegated``/``account`` survive — they
        are what reuse amortizes.
        """
        self._release_data_ports()
        self.remote_ports = []
        self.pending.clear()
        self.restart = None
        self.dcsc = None
        self._rnfr = None
        self._stor_resume = False
        self.type_ = "A"
        self.mode = "S"
        self.parallelism = 1
        self.protection = Protection.CLEAR
        self.dcau_mode = DCAUMode.SELF
        self.dcau_subject = None
        self.tcp_window = None
        if self.account is not None:
            self.cwd = self.account.home

    # -- security ------------------------------------------------------------------

    def _cmd_auth(self, arg: str) -> list[str]:
        if arg.upper() != "GSSAPI":
            return ["504 Unknown security mechanism."]
        self.auth_pending = True
        # present the server's certificate chain (never the key) so the
        # client can authenticate *us* — the mutual half of GSI.  The
        # banner is a pure function of the credential, so it is built
        # once and replayed until the server is re-credentialed.
        server = self.server
        memo = server.__dict__.get("_auth_banner")
        if memo is None or memo[0] is not server.credential:
            chain_pem = "".join(c.to_pem() for c in server.credential.chain)
            memo = (server.credential,
                    f"334 ADAT={b64encode_str(chain_pem.encode('ascii'))}")
            server._auth_banner = memo
        return [memo[1]]

    def _cmd_adat(self, arg: str) -> list[str]:
        if not self.auth_pending:
            return ["503 Bad sequence of commands: send AUTH first."]
        try:
            # decode memo: clients replaying a cached delegation present
            # the identical blob on every login (pure decode, bounded)
            pem = _ADAT_DECODE.get(arg)
            if pem is None:
                pem = b64decode_str(arg).decode("ascii", errors="replace")
                if len(_ADAT_DECODE) < 512:
                    _ADAT_DECODE[arg] = pem
            credential = Credential.from_pem(pem)
            self.peer = validate_chain(credential.chain, self.server.trust, self.world.now)
        except (ProtocolError, CertificateError) as exc:
            # "If authentication is not successful, the connection is dropped."
            self.closed = True
            self.world.emit("gridftp.auth.fail", "control channel auth failed",
                            server=self.server.name, reason=str(exc))
            return [f"535 Authentication failed: {exc}"]
        self.delegated = credential
        self.auth_pending = False
        self.world.emit("gridftp.auth.ok", "control channel authenticated",
                        server=self.server.name, subject=str(self.peer.subject))
        return [str(R.SECURITY_OK)]

    def _cmd_user(self, arg: str) -> list[str]:
        if self.peer is None:
            return [str(R.NOT_LOGGED_IN)]
        requested = None if arg in ("", ":globus-mapping:") else arg
        try:
            username = self.server.authz.map_subject(self.peer, requested)
            self.account = self.server.accounts.setuid(username)
        except (AuthorizationError, PamError) as exc:
            self.world.emit("gridftp.authz.fail", "authorization failed",
                            server=self.server.name, subject=str(self.peer.identity),
                            reason=str(exc))
            return [f"530 Authorization failed: {exc}"]
        self.cwd = self.account.home
        self.world.emit("gridftp.authz.ok", "authorized",
                        server=self.server.name, subject=str(self.peer.identity),
                        local_user=self.account.username, callout=self.server.authz.name)
        return [str(R.LOGGED_IN)]

    def _cmd_pass(self, arg: str) -> list[str]:
        # GSI servers do not use passwords; accept as a no-op after USER.
        return [str(R.COMMAND_OK)] if self.account else [str(R.NOT_LOGGED_IN)]

    # -- session parameters ------------------------------------------------------------

    def _cmd_type(self, arg: str) -> list[str]:
        if arg.upper() not in ("I", "A"):
            return [str(R.BAD_PARAMETER)]
        self.type_ = arg.upper()
        return [str(R.COMMAND_OK)]

    def _cmd_mode(self, arg: str) -> list[str]:
        if arg.upper() not in ("S", "E"):
            return [str(R.BAD_PARAMETER)]
        self.mode = arg.upper()
        return [str(R.COMMAND_OK)]

    def _cmd_opts(self, arg: str) -> list[str]:
        # OPTS RETR Parallelism=8,8,8;
        head, _, rest = arg.partition(" ")
        if head.upper() != "RETR":
            return [str(R.BAD_PARAMETER)]
        for clause in rest.strip().rstrip(";").split(";"):
            key, _, value = clause.partition("=")
            if key.strip().lower() == "parallelism":
                try:
                    self.parallelism = max(1, int(value.split(",")[0]))
                except ValueError:
                    return [str(R.BAD_PARAMETER)]
        return [str(R.COMMAND_OK)]

    def _cmd_pbsz(self, arg: str) -> list[str]:
        try:
            int(arg)
        except ValueError:
            return [str(R.BAD_PARAMETER)]
        return [str(R.COMMAND_OK)]

    def _cmd_prot(self, arg: str) -> list[str]:
        try:
            self.protection = Protection(arg.strip().upper())
        except ValueError:
            return [str(R.BAD_PARAMETER)]
        return [str(R.COMMAND_OK)]

    def _cmd_dcau(self, arg: str) -> list[str]:
        parts = arg.split(None, 1)
        if not parts:
            return [str(R.BAD_PARAMETER)]
        try:
            self.dcau_mode = DCAUMode.parse(parts[0])
        except Exception:
            return [str(R.BAD_PARAMETER)]
        self.dcau_subject = None
        if self.dcau_mode is DCAUMode.SUBJECT:
            if len(parts) < 2:
                return [str(R.BAD_PARAMETER)]
            self.dcau_subject = DistinguishedName.parse(parts[1])
        return [str(R.COMMAND_OK)]

    def _cmd_sbuf(self, arg: str) -> list[str]:
        try:
            self.tcp_window = int(arg)
        except ValueError:
            return [str(R.BAD_PARAMETER)]
        return [str(R.COMMAND_OK)]

    def _cmd_rest(self, arg: str) -> list[str]:
        self.restart = parse_restart_marker(arg)
        return [str(R.NEED_MORE_INFO)]

    def _cmd_dcsc(self, arg: str) -> list[str]:
        if not self.server.dcsc_enabled:
            # "a legacy GridFTP server that knows nothing about DCSC"
            return [str(R.UNRECOGNIZED)]
        parts = arg.split(None, 1)
        if not parts:
            return [str(R.BAD_PARAMETER)]
        ctx_type = parts[0].upper()
        if ctx_type == "D":
            self.dcsc = None
            self.world.emit("gridftp.dcsc", "context reverted to default",
                            server=self.server.name)
            return [str(R.COMMAND_OK)]
        if ctx_type == "P":
            if len(parts) < 2:
                return [str(R.BAD_PARAMETER)]
            self.dcsc = decode_dcsc_blob(parts[1], self.world.now)
            self.world.emit("gridftp.dcsc", "context installed",
                            server=self.server.name,
                            subject=str(self.dcsc.credential.subject))
            return [str(R.COMMAND_OK)]
        return [f"501 Unknown DCSC context type {ctx_type!r}."]

    # -- data port negotiation -----------------------------------------------------------

    def _release_data_ports(self) -> None:
        for listener in self.passive_listeners:
            close_listener(self.world.network, listener)
        self.passive_listeners = []

    def _cmd_pasv(self, arg: str) -> list[str]:
        self._release_data_ports()
        listener = listen_ephemeral(
            self.world.network, self.server.dtp_hosts[0], _DataPortService(self)
        )
        self.passive_listeners = [listener]
        return [R.PASSIVE_FMT.format(addr=f"{listener.host}:{listener.port}")]

    def _cmd_spas(self, arg: str) -> list[str]:
        self._release_data_ports()
        lines = ["229-Entering Striped Passive Mode"]
        for dtp_host in self.server.dtp_hosts:
            listener = listen_ephemeral(self.world.network, dtp_host, _DataPortService(self))
            self.passive_listeners.append(listener)
            lines.append(f" {listener.host}:{listener.port}")
        lines.append("229 End")
        return lines

    def _cmd_port(self, arg: str) -> list[str]:
        host, _, port_s = arg.rpartition(":")
        try:
            self.remote_ports = [(host, int(port_s))]
        except ValueError:
            return [str(R.BAD_PARAMETER)]
        return [str(R.COMMAND_OK)]

    def _cmd_spor(self, arg: str) -> list[str]:
        ports: list[tuple[str, int]] = []
        for item in arg.split():
            host, _, port_s = item.rpartition(":")
            try:
                ports.append((host, int(port_s)))
            except ValueError:
                return [str(R.BAD_PARAMETER)]
        if not ports:
            return [str(R.BAD_PARAMETER)]
        self.remote_ports = ports
        return [str(R.COMMAND_OK)]

    # -- namespace commands ------------------------------------------------------------

    def _resolve(self, path: str) -> str:
        if path.startswith("/"):
            return path
        base = self.cwd.rstrip("/")
        return f"{base}/{path}"

    @property
    def uid(self) -> int:
        """The setuid'd local uid of this session."""
        assert self.account is not None
        return self.account.uid

    def _cmd_pwd(self, arg: str) -> list[str]:
        return [f'257 "{self.cwd}" is the current directory.']

    def _cmd_cwd(self, arg: str) -> list[str]:
        target = self._resolve(arg)
        st = self.server.dsi.stat(target, self.uid)
        if not st.is_dir:
            return [str(R.file_unavailable(target, "Not a directory"))]
        self.cwd = target
        return ["250 CWD command successful."]

    def _cmd_mkd(self, arg: str) -> list[str]:
        target = self._resolve(arg)
        self.server.dsi.mkdir(target, self.uid)
        return [f'257 "{target}" created.']

    def _cmd_dele(self, arg: str) -> list[str]:
        self.server.dsi.delete(self._resolve(arg), self.uid)
        return ["250 DELE command successful."]

    def _cmd_rnfr(self, arg: str) -> list[str]:
        target = self._resolve(arg)
        self.server.dsi.stat(target, self.uid)  # 550 if missing
        self._rnfr = target
        return [str(R.NEED_MORE_INFO)]

    def _cmd_rnto(self, arg: str) -> list[str]:
        if self._rnfr is None:
            return ["503 Bad sequence of commands: send RNFR first."]
        self.server.dsi.rename(self._rnfr, self._resolve(arg), self.uid)
        self._rnfr = None
        return ["250 RNTO command successful."]

    def _cmd_list(self, arg: str) -> list[str]:
        target = self._resolve(arg) if arg else self.cwd
        names = self.server.dsi.listdir(target, self.uid)
        lines = ["250-Directory listing"]
        lines.extend(f" {name}" for name in names)
        lines.append("250 End")
        return lines

    def _cmd_size(self, arg: str) -> list[str]:
        st = self.server.dsi.stat(self._resolve(arg), self.uid)
        return [R.SIZE_FMT.format(size=st.size)]

    def _cmd_mdtm(self, arg: str) -> list[str]:
        st = self.server.dsi.stat(self._resolve(arg), self.uid)
        return [f"213 {st.mtime:.0f}"]

    def _cmd_cksm(self, arg: str) -> list[str]:
        # CKSM <algorithm> <path>   (offset/length args of the real
        # command are accepted and ignored when numeric)
        parts = [p for p in arg.split() if p]
        if len(parts) < 2:
            return [str(R.BAD_PARAMETER)]
        algorithm = parts[0]
        path = parts[-1]
        try:
            digest = self.server.dsi.checksum(self._resolve(path), self.uid, algorithm)
        except ValueError as exc:
            return [f"504 {exc}"]
        return [f"213 {digest}"]

    def _cmd_feat(self, arg: str) -> list[str]:
        # the FEAT body is a pure function of dcsc_enabled; build it once
        # per flavour and hand out copies (clients probe FEAT per job)
        dcsc_enabled = self.server.dcsc_enabled
        lines = _FEAT_REPLY.get(dcsc_enabled)
        if lines is None:
            lines = [f"{R.FEATURES_FOLLOW.code}-{R.FEATURES_FOLLOW.text}"]
            lines.extend(f" {label}" for label in feature_labels(dcsc_enabled))
            lines.append("211 End")
            _FEAT_REPLY[dcsc_enabled] = lines
        return list(lines)

    def _cmd_noop(self, arg: str) -> list[str]:
        return [str(R.COMMAND_OK)]

    def _cmd_quit(self, arg: str) -> list[str]:
        self.close()
        return [str(R.GOODBYE)]

    def _cmd_abor(self, arg: str) -> list[str]:
        self.pending.clear()
        self.restart = None
        return [str(R.TRANSFER_COMPLETE)]

    # -- transfers ---------------------------------------------------------------------

    def _cmd_retr(self, arg: str) -> list[str]:
        path = self._resolve(arg)
        data = self.server.dsi.open_read(path, self.uid)
        # REST carried the ranges the client already holds; send the rest.
        needed = self.restart.complement(data.size) if self.restart is not None else None
        self.pending.append(
            TransferIntent(direction="send", path=path, data=data, needed=needed)
        )
        self.restart = None
        return [str(R.OPENING_DATA)]

    def _cmd_stor(self, arg: str) -> list[str]:
        path = self._resolve(arg)
        resume = self.restart is not None
        # the expected size arrives with the data in mode E; the sink is
        # created lazily by take_sink() once the engine knows the size.
        self.pending.append(
            TransferIntent(direction="recv", path=path, needed=self.restart)
        )
        self._stor_resume = resume
        self.restart = None
        return [str(R.OPENING_DATA)]

    def _cmd_eret(self, arg: str) -> list[str]:
        # ERET P <offset> <length> <path> — partial retrieve
        parts = arg.split()
        if len(parts) != 4 or parts[0].upper() != "P":
            return [str(R.BAD_PARAMETER)]
        try:
            offset, length = int(parts[1]), int(parts[2])
        except ValueError:
            return [str(R.BAD_PARAMETER)]
        path = self._resolve(parts[3])
        data = self.server.dsi.open_read(path, self.uid)
        needed = ByteRangeSet([(offset, min(offset + length, data.size))])
        self.pending.append(
            TransferIntent(direction="send", path=path, data=data, needed=needed)
        )
        return [str(R.OPENING_DATA)]

    def _cmd_esto(self, arg: str) -> list[str]:
        # ESTO A <offset> <path> — adjusted store (append at offset)
        parts = arg.split()
        if len(parts) != 3 or parts[0].upper() != "A":
            return [str(R.BAD_PARAMETER)]
        path = self._resolve(parts[2])
        self.pending.append(TransferIntent(direction="recv", path=path))
        self._stor_resume = True
        return [str(R.OPENING_DATA)]

    # -- engine-facing accessors -----------------------------------------------------

    def take_intent(self) -> TransferIntent:
        """Claim the oldest pending transfer (FIFO: pipelined RETRs queue)."""
        if not self.pending:
            raise ProtocolError("no transfer pending on this session", code=503)
        return self.pending.pop(0)

    def make_sink(self, intent: TransferIntent, expected_size: int) -> WriteSink:
        """Open the storage sink for a recv intent."""
        resume = getattr(self, "_stor_resume", False) or intent.needed is not None
        return self.server.dsi.open_write(intent.path, self.uid, expected_size, resume=resume)

    def data_channel_security(self) -> DataChannelSecurity:
        """This endpoint's DCAU posture, honouring any DCSC context.

        Default: present the user's delegated proxy, accept what the
        endpoint's trust roots validate, and (mode A) expect the peer to
        be the same user.  With DCSC installed: present the blob
        credential, extend validation with the blob's certificates, and
        expect the blob's identity (paper Section V: "tell it to both
        send and accept the user credential used by the other server").
        """
        trust = self.server.trust
        # the posture is a pure function of (delegated, dcsc, dcau mode +
        # subject, peer, trust) — all rebound, never mutated, by the
        # handlers — so identity checks make a safe per-session memo;
        # trust mutates in place but bumps .version on every change
        m = self._dcs_memo
        if (
            m is not None
            and m[0] is self.delegated
            and m[1] is self.dcsc
            and m[2] is self.dcau_mode
            and m[3] is self.dcau_subject
            and m[4] is self.peer
            and m[5] is trust
            and m[6] == trust.version
        ):
            return m[7]
        credential = self.delegated
        extra_anchors: tuple = ()
        extra_intermediates: tuple = ()
        override = None
        if self.dcsc is not None:
            credential = self.dcsc.credential
            extra_anchors = self.dcsc.anchors
            extra_intermediates = self.dcsc.intermediates
            override = self.dcsc.credential.identity
        expected = None
        if self.dcau_mode is DCAUMode.SELF and self.peer is not None:
            expected = self.peer.identity
        elif self.dcau_mode is DCAUMode.SUBJECT:
            expected = self.dcau_subject
        sec = DataChannelSecurity(
            mode=self.dcau_mode,
            credential=credential,
            trust=trust,
            extra_anchors=extra_anchors,
            extra_intermediates=extra_intermediates,
            expected_identity=expected,
            expected_subject_override=override,
            endpoint_name=self.server.name,
        )
        self._dcs_memo = (
            self.delegated, self.dcsc, self.dcau_mode, self.dcau_subject,
            self.peer, trust, trust.version, sec,
        )
        return sec


#: verb -> unbound handler, resolved once at import time (the
#: per-command f-string + getattr was measurable at fleet drain rates)
_HANDLERS = {
    verb: getattr(GridFTPSession, "_cmd_" + verb.lower())
    for verb in known_verbs()
    if hasattr(GridFTPSession, "_cmd_" + verb.lower())
}

#: ADAT blob -> decoded PEM text (see GridFTPSession._cmd_adat)
_ADAT_DECODE: dict[str, str] = {}

#: dcsc_enabled -> built FEAT reply lines (see GridFTPSession._cmd_feat)
_FEAT_REPLY: dict[bool, list[str]] = {}
