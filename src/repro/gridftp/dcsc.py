"""The Data Channel Security Context (DCSC) command — paper Section V.

``DCSC P <base64 blob>`` hands a server a credential to *both present to
and accept from* the other endpoint of a third-party transfer, enabling
secure DCAU across security domains whose CAs do not trust each other
(Figure 5).  ``DCSC D`` reverts to the default context (whatever was in
effect immediately after login).

Blob format, exactly as Section V.A specifies:

1. an X.509 certificate in PEM format;
2. a private key in PEM format;
3. additional X.509 certificates in PEM format, unordered (optional).

"A DCSC P command will overwrite any previous request."  "The
certificate in (1) must be self-signed or verifiable by using only
intermediate and/or CA certificates in (3)."  The decoded context's
self-signed certificates become policy-exempt validation anchors;
non-self-signed ones become available intermediates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProtocolError
from repro.pki.certificate import Certificate
from repro.pki.credential import Credential
from repro.pki.validation import TrustStore, validate_chain
from repro.util.encoding import b64decode_str, b64encode_str, is_printable_ascii


@dataclass(frozen=True)
class DcscContext:
    """A decoded, verified DCSC P context installed on a session."""

    credential: Credential

    @property
    def anchors(self) -> tuple[Certificate, ...]:
        """Self-signed certificates from the blob: extra trust anchors."""
        return tuple(c for c in self.credential.chain if c.is_self_signed)

    @property
    def intermediates(self) -> tuple[Certificate, ...]:
        """Non-self-signed blob certificates: chain-completion material."""
        return tuple(c for c in self.credential.chain if not c.is_self_signed)


def encode_dcsc_blob(credential: Credential) -> str:
    """Encode a credential as the DCSC P argument.

    Base64 over the concatenated PEM blocks; the result is printable
    ASCII as the protocol requires.
    """
    blob = b64encode_str(credential.to_pem(include_key=True).encode("ascii"))
    assert is_printable_ascii(blob)
    return blob


def decode_dcsc_blob(blob: str, now: float) -> DcscContext:
    """Decode and verify a DCSC P blob.

    Enforces the Section V.A self-containedness rule: the leaf must be
    self-signed or verifiable using only the blob's own certificates.
    Raises :class:`ProtocolError` (mapped to a 501 reply) on violations.
    """
    text = b64decode_str(blob).decode("ascii", errors="replace")
    try:
        credential = Credential.from_pem(text)
    except Exception as exc:
        raise ProtocolError(f"malformed DCSC blob: {exc}", code=501) from exc

    context = DcscContext(credential=credential)
    leaf = credential.certificate
    if not leaf.is_self_signed:
        # must verify using only blob material
        try:
            validate_chain(
                credential.chain,
                TrustStore(),  # deliberately empty: blob must be self-contained
                now,
                extra_anchors=context.anchors,
                extra_intermediates=context.intermediates,
            )
        except Exception as exc:
            raise ProtocolError(
                f"DCSC certificate is not self-signed and its chain is not "
                f"verifiable from the blob alone: {exc}",
                code=501,
            ) from exc
    return context
