"""Restart markers.

GridFTP provides "increased reliability via restart markers" (paper
Section I): during a mode E transfer the receiver periodically reports
the byte ranges it has safely stored (``111 Range Marker``); after a
failure the client resends only the complement via ``REST`` with a
range-list argument.

The range algebra lives in :class:`repro.util.ranges.ByteRangeSet`; this
module adds the wire format: ``"0-1048576,2097152-3145728"``.
"""

from __future__ import annotations

from repro.errors import ProtocolError
from repro.util.ranges import ByteRangeSet

__all__ = [
    "ByteRangeSet",
    "format_restart_marker",
    "parse_restart_marker",
    "marker_reply_line",
]


def format_restart_marker(ranges: ByteRangeSet) -> str:
    """Render a range set as the REST/marker argument string."""
    return ",".join(f"{s}-{e}" for s, e in ranges)


def parse_restart_marker(text: str) -> ByteRangeSet:
    """Parse ``"0-100,200-300"`` into a range set.

    Also accepts the stream-mode single-offset form ``"12345"`` as
    ``[12345, inf)`` is unrepresentable, we interpret it as "resume from
    offset" by returning the completed prefix [0, offset).
    """
    text = text.strip()
    if not text:
        return ByteRangeSet()
    out = ByteRangeSet()
    if "-" not in text:
        try:
            offset = int(text)
            out.add(0, offset)
        except ValueError:
            raise ProtocolError(f"malformed restart marker {text!r}", code=501) from None
        return out
    for part in text.split(","):
        part = part.strip()
        start_s, sep, end_s = part.partition("-")
        if not sep:
            raise ProtocolError(f"malformed range {part!r}", code=501)
        try:
            start, end = int(start_s), int(end_s)
        except ValueError:
            raise ProtocolError(f"malformed range {part!r}", code=501) from None
        if end < start:
            raise ProtocolError(f"inverted range {part!r}", code=501)
        try:
            out.add(start, end)
        except ValueError:
            # negative offsets and other algebra rejections are protocol
            # errors too, not internal faults
            raise ProtocolError(f"malformed range {part!r}", code=501) from None
    return out


def marker_reply_line(ranges: ByteRangeSet) -> str:
    """The periodic ``111 Range Marker`` performance report line."""
    return f"111 Range Marker {format_restart_marker(ranges)}"
