"""The transfer engine: moving bytes under the network model.

This is where the GridFTP data channel meets the simulated WAN.  An
execute() call takes a source (file content + stripe hosts + security),
a sink (write sink + stripe hosts + security), and options (parallelism,
protection, transport, block size), then:

1. performs data-channel authentication (the Figure 4/5 logic);
2. computes the achievable rate from the XIO stack over every
   stripe-pair flow;
3. streams mode E blocks — real payload bytes for literal files — into
   the sink, charging virtual time;
4. honours the fault plan: an interruption mid-transfer persists the
   received ranges (restart markers) and raises
   :class:`~repro.errors.TransferFaultError`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import TransferError, TransferFaultError
from repro.gridftp.dcau import DataChannelAuthCache, DataChannelSecurity, DCAUMode
from repro.gridftp.mode_e import DEFAULT_BLOCK_SIZE, ModeEPlan
from repro.gridftp.perf import PerfMarker, progress_markers
from repro.net.tcp import TCPModel
from repro.net.topology import PathStats
from repro.sim.world import World
from repro.storage.data import FileData, SyntheticData, checksum
from repro.storage.dsi import WriteSink
from repro.util.ranges import ByteRangeSet
from repro.xio.drivers import GsiProtectDriver, Protection, TcpDriver, UdtDriver
from repro.xio.stack import XIOStack


#: histogram bucket edges for ``transfer_duration_seconds`` (virtual seconds)
TRANSFER_DURATION_BUCKETS: tuple[float, ...] = (
    0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0, 600.0, 1800.0, 3600.0,
)


@dataclass(frozen=True)
class TransferOptions:
    """Tunable knobs for one transfer (the OPTS/SBUF/PROT command state)."""

    parallelism: int = 1
    block_size: int = DEFAULT_BLOCK_SIZE
    protection: Protection = Protection.CLEAR
    dcau: DCAUMode = DCAUMode.SELF
    dcau_subject: str | None = None  # DCAU S <subject> argument
    tcp_window_bytes: int | None = None  # None -> era-default 64 KiB
    transport: str = "tcp"  # "tcp" | "udt"
    marker_interval_s: float = 5.0
    pipelining: bool = False  # batch control commands for many-file jobs
    concurrency: int = 1  # simultaneous whole-file transfers

    def __post_init__(self) -> None:
        if self.parallelism < 1:
            raise TransferError("parallelism must be >= 1")
        if self.concurrency < 1:
            raise TransferError("concurrency must be >= 1")
        if self.transport not in ("tcp", "udt"):
            raise TransferError(f"unknown transport {self.transport!r}")

    def with_(self, **kwargs) -> "TransferOptions":
        """A modified copy (convenience for sweeps)."""
        return replace(self, **kwargs)

    def build_stack(self) -> XIOStack:
        """The XIO stack these options imply."""
        if self.transport == "udt":
            transport = UdtDriver()
        else:
            model = (
                TCPModel.tuned(self.tcp_window_bytes)
                if self.tcp_window_bytes
                else TCPModel.untuned()
            )
            transport = TcpDriver(model=model)
        stack = XIOStack(transport=transport)
        if self.protection is not Protection.CLEAR:
            stack = stack.push(GsiProtectDriver(protection=self.protection))
        return stack


@dataclass(slots=True)
class TransferResult:
    """Outcome of a completed transfer.

    Logically immutable; not ``frozen=True`` because a frozen dataclass
    ``__init__`` goes through ``object.__setattr__`` per field and this
    object is built once per transfer on the fleet hot path.
    """

    nbytes: int
    start_time: float
    end_time: float
    streams: int
    stripes: int
    verified: bool
    checksum: str
    markers: tuple[PerfMarker, ...] = ()

    @property
    def duration_s(self) -> float:
        """Elapsed virtual seconds."""
        return self.end_time - self.start_time

    @property
    def rate_bps(self) -> float:
        """Effective payload rate in bits per second."""
        if self.duration_s <= 0:
            return 0.0
        return self.nbytes * 8.0 / self.duration_s


@dataclass
class SourceSpec:
    """The sending side of a transfer."""

    hosts: tuple[str, ...]
    data: FileData
    security: DataChannelSecurity
    needed: ByteRangeSet | None = None  # restart: only these ranges

    def __post_init__(self) -> None:
        if not self.hosts:
            raise TransferError("source has no hosts")


@dataclass
class SinkSpec:
    """The receiving side of a transfer."""

    hosts: tuple[str, ...]
    sink: WriteSink
    security: DataChannelSecurity

    def __post_init__(self) -> None:
        if not self.hosts:
            raise TransferError("sink has no hosts")


@dataclass(frozen=True)
class _Flow:
    src: str
    dst: str
    path: PathStats


class _TransferProfile:
    """Route/rate/plan state shared by identical repeat transfers.

    A fleet moves millions of files over a handful of (source hosts,
    sink hosts, options, size) shapes; everything here is a pure
    function of that shape and the topology, so recomputing it per
    transfer is waste.  Cached values are the *identical* floats the
    inline computation produced — virtual-time outcomes cannot drift.
    Invalidation: the owning cache is keyed by the network's
    ``topology_version``; the per-fault-plan view refreshes on the
    plan's mutation ``epoch``.
    """

    __slots__ = ("flows", "nstripes", "max_rtt", "stack", "stack_describe",
                 "rate_bps", "links", "hosts", "setup_extra", "plan",
                 "_fault_view")

    def __init__(self, engine: "TransferEngine", source: "SourceSpec",
                 sink: "SinkSpec", options: "TransferOptions") -> None:
        self.flows = engine._flows(source, sink)
        self.nstripes = len(self.flows)
        self.max_rtt = max(f.path.rtt_s for f in self.flows)
        stack = self.stack = options.build_stack()
        self.stack_describe = stack.describe()
        rate = 0.0
        for f in self.flows:
            per_flow = stack.throughput(f.path, options.parallelism)
            if options.concurrency > 1:
                per_flow = min(per_flow, f.path.bottleneck_bps / options.concurrency)
            rate += per_flow
        self.rate_bps = rate
        links, hosts = TransferEngine._all_resources(self.flows)
        self.links = tuple(sorted(links))
        self.hosts = tuple(sorted(hosts))
        self.setup_extra = (
            max(stack.setup_time_s(f.path) for f in self.flows)
            + max(stack.ramp_penalty_s(f.path, options.parallelism)
                  for f in self.flows)
        )
        self.plan = ModeEPlan.plan(source.data.size, options.block_size, None)
        self._fault_view: tuple | None = None

    def fault_view(self, faults) -> tuple[tuple[str, ...], tuple[str, ...], tuple[str, ...]]:
        """(faulted links, faulted hosts, degraded links) on this route.

        Subsets carrying any scheduled fault at all — resources outside
        them can never change ``first_interruption`` or
        ``bandwidth_factor``, so the common all-clean route skips both
        scans entirely.  Cached per fault-plan epoch.
        """
        fv = self._fault_view
        epoch = faults.epoch
        if fv is None or fv[0] != epoch:
            fv = (
                epoch,
                tuple(l for l in self.links if faults.has_link_faults(l)),
                tuple(h for h in self.hosts if faults.has_host_faults(h)),
                tuple(l for l in self.links if faults.has_degradations(l)),
            )
            self._fault_view = fv
        return fv[1], fv[2], fv[3]


class TransferEngine:
    """Executes transfers against one world.

    Every metric instrument is resolved once here — steady-state
    transfers touch the registry zero times — and every labelled series
    a transfer can produce is pre-registered at zero, so exposition
    shows the full set before the first fault or degradation.
    """

    def __init__(self, world: World) -> None:
        self.world = world
        metrics = world.metrics
        self._active = metrics.gauge(
            "active_data_channels", "Data channels currently moving bytes"
        ).labels()
        self._bytes_moved = metrics.counter(
            "data_channel_bytes_total",
            "Payload bytes moved on data channels",
            labelnames=("outcome", "transport"),
        )
        # bound per-(outcome, transport) children, created on first use
        self._bytes_children: dict[tuple[str, str], object] = {}
        transfers = metrics.counter(
            "transfers_total", "Data-channel transfer attempts", labelnames=("outcome",)
        )
        self._transfers_complete = transfers.labels(outcome="complete")
        self._transfers_fault = transfers.labels(outcome="fault")
        self._degraded = metrics.counter(
            "transfers_degraded_total",
            "Transfers that ran through a bandwidth-degradation episode",
        ).labels()
        self._faults_data_channel = metrics.counter(
            "faults_injected_total", "Fault-plan interruptions observed",
            labelnames=("kind",),
        ).labels(kind="data_channel")
        self._duration_obs = metrics.histogram(
            "transfer_duration_seconds",
            "End-to-end duration of completed transfers (virtual seconds)",
            buckets=TRANSFER_DURATION_BUCKETS,
        ).labels()
        self._transfers_complete.inc(0.0)
        self._transfers_fault.inc(0.0)
        self._degraded.inc(0.0)
        self._faults_data_channel.inc(0.0)
        # transfer-shape profiles, dropped whenever the topology mutates
        self._profiles: dict[tuple, _TransferProfile] = {}
        self._profiles_topo_version = -1
        # DCAU successes replayed across files/jobs (wall-clock only; the
        # 2*RTT setup charge stays governed by charge_setup below)
        self.dcau_cache = DataChannelAuthCache()

    @classmethod
    def for_world(cls, world: World) -> "TransferEngine":
        """The shared engine for ``world`` (created on first use).

        The engine holds no per-transfer state — only the world handle
        and metric children bound to the world's registry — so every
        client sharing one instance is indistinguishable from each
        owning its own, minus the per-construction registry work.
        """
        engine = world.__dict__.get("_transfer_engine")
        if engine is None:
            engine = world._transfer_engine = cls(world)
        return engine

    def _bytes_child(self, outcome: str, transport: str):
        key = (outcome, transport)
        child = self._bytes_children.get(key)
        if child is None:
            child = self._bytes_moved.labels(outcome=outcome, transport=transport)
            self._bytes_children[key] = child
        return child

    # -- internals -----------------------------------------------------------

    def _flows(self, source: SourceSpec, sink: SinkSpec) -> list[_Flow]:
        """Stripe-pair flows: one per max(src stripes, dst stripes)."""
        n = max(len(source.hosts), len(sink.hosts))
        flows = []
        for i in range(n):
            src = source.hosts[i % len(source.hosts)]
            dst = sink.hosts[i % len(sink.hosts)]
            flows.append(_Flow(src=src, dst=dst, path=self.world.network.path(src, dst)))
        return flows

    @staticmethod
    def _all_resources(flows: list[_Flow]) -> tuple[set[str], set[str]]:
        links: set[str] = set()
        hosts: set[str] = set()
        for f in flows:
            links.update(f.path.link_ids)
            hosts.update(f.path.hosts)
            hosts.update((f.src, f.dst))
        return links, hosts

    # -- the main entry point ----------------------------------------------------

    def execute(
        self,
        source: SourceSpec,
        sink: SinkSpec,
        options: TransferOptions,
        charge_setup: bool = True,
        advance_clock: bool = True,
        finalize: bool = True,
    ) -> TransferResult:
        """Run one transfer to completion (or interruption).

        Raises :class:`~repro.errors.DCAUError` if data-channel
        authentication fails (Figure 4) and
        :class:`~repro.errors.TransferFaultError` if the fault plan cuts
        the transfer; in the latter case the sink's partial state has
        been persisted for restart.

        ``advance_clock=False`` computes timing without moving the world
        clock — used by batch orchestration (concurrency lanes), whose
        caller advances the clock by the lane makespan itself.  Fault
        interruption is only modelled when the clock advances.

        Every run opens a ``data_channel`` tracer span and maintains the
        ``active_data_channels`` gauge; bytes and outcomes land in the
        ``data_channel_bytes_total`` / ``transfers_total`` counters.
        """
        world = self.world
        active = self._active
        with world.tracer.span(
            "data_channel",
            transport=options.transport,
            parallelism=options.parallelism,
        ) as span:
            active.inc()
            try:
                return self._execute(
                    source, sink, options, charge_setup, advance_clock, finalize, span
                )
            finally:
                active.dec()

    def _profile(self, source: SourceSpec, sink: SinkSpec,
                 options: TransferOptions) -> _TransferProfile:
        """The cached :class:`_TransferProfile` for this transfer shape."""
        tv = self.world.network.topology_version
        if tv != self._profiles_topo_version:
            self._profiles.clear()
            self._profiles_topo_version = tv
        key = (source.hosts, sink.hosts, options, source.data.size)
        prof = self._profiles.get(key)
        if prof is None:
            prof = self._profiles[key] = _TransferProfile(self, source, sink, options)
        return prof

    def _execute(
        self,
        source: SourceSpec,
        sink: SinkSpec,
        options: TransferOptions,
        charge_setup: bool,
        advance_clock: bool,
        finalize: bool,
        span,
    ) -> TransferResult:
        world = self.world
        prof = self._profile(source, sink, options)
        flows = prof.flows
        network = world.network
        for f in flows:
            network.check_path_up(f.path)

        window_start = world.now

        # 1. data channel authentication (sender connects, receiver listens).
        # Mode E data channels are cached across files, so a reused channel
        # (charge_setup=False) re-validates logically but pays no time.
        authed = self.dcau_cache.authenticate(
            source.security, sink.security, window_start
        )
        extra_time = 0.0
        if authed and charge_setup:
            extra_time += 2.0 * prof.max_rtt

        # 2. achievable rate (profiled).  Concurrent whole-file transfers
        # (the "concurrency" optimization) share the bottleneck fairly.
        rate_bps = prof.rate_bps
        if rate_bps <= 0:
            raise TransferError("zero achievable rate on every flow")
        # chaos degradation episodes slow the transfer without cutting it;
        # only links with any scheduled episode can change the factor
        f_links, f_hosts, d_links = prof.fault_view(world.faults)
        degrade = (
            world.faults.bandwidth_factor(d_links, window_start) if d_links else 1.0
        )
        if degrade < 1.0:
            rate_bps *= degrade
            world.emit(
                "gridftp.transfer.degraded",
                "transfer running on degraded links",
                factor=degrade,
            )
            self._degraded.inc()
        if charge_setup:
            extra_time += prof.setup_extra
        if advance_clock:
            world.advance(extra_time)

        # 3. the block schedule (range arithmetic — no Block objects)
        plan = (
            prof.plan
            if source.needed is None
            else ModeEPlan.plan(source.data.size, options.block_size, source.needed)
        )
        total = plan.total_bytes
        start = world.now if advance_clock else world.now + extra_time
        payload_s = total * 8.0 / rate_bps
        end = start + payload_s

        # 4. fault check over the whole window (setup included); resources
        # with no scheduled outage at all cannot interrupt anything
        fault_at = None
        if advance_clock and (f_links or f_hosts):
            fault_at = world.faults.first_interruption(f_links, f_hosts, window_start, end)

        if fault_at is not None:
            delivered = 0
            if fault_at > start:
                delivered = int(rate_bps / 8.0 * (fault_at - start))
            self._write_ranges(sink.sink, source.data, plan, limit=delivered)
            received = sink.sink.received
            sink.sink.close(complete=False)
            world.advance_to(max(fault_at, world.now))
            world.emit(
                "gridftp.transfer.fault",
                "transfer interrupted",
                bytes_done=received.total_bytes(),
                bytes_total=total,
            )
            self._bytes_child("fault", options.transport).inc(received.total_bytes())
            self._transfers_fault.inc()
            self._faults_data_channel.inc()
            span.fields.update(nbytes=received.total_bytes(), bytes_total=total)
            raise TransferFaultError(
                f"transfer interrupted at t={fault_at:.3f} after "
                f"{received.total_bytes()}/{total} bytes",
                received=received,
                at_time=fault_at,
            )

        # 5. clean completion: move every block, advance, verify.
        # finalize=False leaves the destination as a persisted partial
        # (ERET window retrievals): nothing to fingerprint yet.
        self._write_ranges(sink.sink, source.data, plan, limit=None)
        if advance_clock:
            world.advance(payload_s)
        if finalize:
            committed = sink.sink.close(complete=True)
            verified = (
                committed is not None
                and checksum(committed) == checksum(source.data)
            )
        else:
            sink.sink.close(complete=False)
            verified = False
        nstripes = prof.nstripes
        nstreams = options.parallelism * nstripes
        markers = progress_markers(
            start, payload_s, total, stripes=nstripes, interval_s=options.marker_interval_s
        )
        end_time = world.now if advance_clock else end
        duration = end_time - window_start
        eff_rate = total * 8.0 / duration if duration > 0 else 0.0
        result = TransferResult(
            nbytes=total,
            start_time=window_start,
            end_time=end_time,
            streams=nstreams,
            stripes=nstripes,
            verified=verified,
            checksum=checksum(source.data),
            markers=tuple(markers),
        )
        world.emit(
            "gridftp.transfer.complete",
            "transfer complete",
            nbytes=total,
            duration=duration,
            rate_bps=eff_rate,
            streams=nstreams,
            stripes=nstripes,
            stack=prof.stack_describe,
            verified=verified,
        )
        self._bytes_child("complete", options.transport).inc(total)
        self._transfers_complete.inc()
        ctx = world.tracer.current
        self._duration_obs.observe(
            duration,
            exemplar=ctx.trace_id if ctx is not None else None)
        span.fields.update(nbytes=total, rate_bps=eff_rate,
                           streams=nstreams, stripes=nstripes)
        return result

    @staticmethod
    def _write_ranges(
        sink: WriteSink, data: FileData, plan: ModeEPlan, limit: int | None
    ) -> None:
        """Deliver the plan's whole-block prefix under ``limit`` to the sink.

        Only *whole* blocks count as received (a cut mid-block delivers
        nothing for that block), matching mode E semantics where a block
        is acknowledged only when fully stored —
        :meth:`ModeEPlan.delivered_prefix` computes that prefix without
        framing blocks, and each contiguous span lands as one bulk write.
        An empty plan (zero-byte file) still sends its bare EOF block, so
        a synthetic zero-byte transfer records its content definition.
        """
        synthetic = data if isinstance(data, SyntheticData) else None
        if not plan.ranges:
            if synthetic is not None:
                sink.write_synthetic_range(0, 0, synthetic)
            return
        # no budget: the plan's own spans are the delivery — skip the
        # ByteRangeSet round-trip and burst each span as one bulk write
        spans = plan.ranges if limit is None else plan.delivered_prefix(limit)
        for start, end in spans:
            if synthetic is not None:
                sink.write_synthetic_range(start, end - start, synthetic)
            else:
                sink.write_range(start, data.read(start, end - start))


def estimate_rate_bps(
    world: World,
    src_host: str,
    dst_host: str,
    options: TransferOptions,
) -> float:
    """Steady-state rate the options would achieve host-to-host (no I/O)."""
    path = world.network.path(src_host, dst_host)
    return options.build_stack().throughput(path, options.parallelism)
