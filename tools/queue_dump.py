#!/usr/bin/env python
"""Dump a fleet scheduler's queue, lease, and worker state as tables.

``dump(scheduler)`` renders ``FleetScheduler.snapshot()`` through the
repo's plain-text table renderer — the operator's `qstat` for the
simulated fleet.  A ``ShardedFleetScheduler`` snapshot renders one
table block per shard under a fleet-totals header.  Import it next to
a live scheduler, or run this file directly for a self-contained demo
that freezes a mid-drain scheduler (one lease in flight, a backlog
queued, one worker host down) and prints the dump.

``dump_catalog(catalog)`` is the same view for the archival pipeline's
catalog: per-request fan-out, per-bundle state-machine status, live
component claims, and status counts (``--archive`` for its demo).

    PYTHONPATH=src python tools/queue_dump.py
    PYTHONPATH=src python tools/queue_dump.py --seed 11
    PYTHONPATH=src python tools/queue_dump.py --shards 3
    PYTHONPATH=src python tools/queue_dump.py --archive
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.metrics.report import render_table  # noqa: E402
from repro.scheduler import FleetScheduler  # noqa: E402


def dump(scheduler) -> str:
    """Every snapshot table as one printable block.

    Accepts a :class:`FleetScheduler` or a
    :class:`~repro.scheduler.ShardedFleetScheduler`; the sharded form
    is recognised by the ``shards`` list in its snapshot and rendered
    shard by shard.
    """
    snap = scheduler.snapshot()
    if "shards" in snap:
        blocks = [
            f"sharded scheduler state @ t={snap['now']:.2f}s — "
            f"{snap['n_shards']} shards, {snap['queued_total']} queued, "
            f"{snap['leases_total']} leases outstanding"
        ]
        for shard_snap in snap["shards"]:
            blocks.append(f"=== shard {shard_snap['shard']} ===")
            blocks.append(_dump_one(shard_snap))
        return "\n\n".join(blocks)
    return _dump_one(snap)


def _dump_one(snap: dict) -> str:
    """One scheduler's snapshot tables (a single shard, or the whole
    unsharded scheduler)."""
    sections = [f"scheduler state @ t={snap['now']:.2f}s"]
    sections.append(render_table(
        f"queued tasks ({len(snap['queued'])})",
        ["task", "user", "state", "prio", "attempts", "bytes", "waiting_s", "route"],
        [
            [q["task"], q["user"], q["state"], q["priority"], q["attempts"],
             q["bytes"], f"{q['waiting_s']:.2f}", q["route"]]
            for q in snap["queued"]
        ],
    ))
    sections.append(render_table(
        f"outstanding leases ({len(snap['leases'])})",
        ["task", "worker", "granted_at", "expires_at", "attempt", "abandoned"],
        [
            [le["task"], le["worker"], f"{le['granted_at']:.2f}",
             f"{le['expires_at']:.2f}", le["attempt"], le["abandoned"]]
            for le in snap["leases"]
        ],
    ))
    sections.append(render_table(
        f"workers ({len(snap['workers'])})",
        ["worker", "host", "alive", "crashes"],
        [
            [w["worker"], w["host"], w["alive"], w["crashes"]]
            for w in snap["workers"]
        ],
    ))
    sections.append(render_table(
        f"fair-share lanes ({len(snap['lanes'])}, global vtime "
        f"{snap['global_vtime']:.0f})",
        ["user", "depth", "weight", "vtime_tag", "head_seq", "delivered_bytes"],
        [
            [ln["user"], ln["depth"], f"{ln['weight']:g}", f"{ln['vtime']:.0f}",
             ln["head_seq"] if ln["head_seq"] is not None else "-",
             ln["delivered_bytes"]]
            for ln in snap["lanes"]
        ],
    ))
    sections.append(render_table(
        f"lease-expiry heap ({len(snap['expiry_heap'])}, soonest first)",
        ["task", "worker", "expires_at", "expires_in_s", "abandoned"],
        [
            [e["task"], e["worker"], f"{e['expires_at']:.2f}",
             f"{e['expires_in_s']:.2f}", e["abandoned"]]
            for e in snap["expiry_heap"]
        ],
    ))
    adm = snap["admission"]
    ewma = adm["service_ewma_s"]
    sections.append(render_table(
        "admission controller",
        ["rejections_by_type", "service_ewma_s", "retry_after_hint_s"],
        [[
            ", ".join(f"{k}={v}" for k, v in adm["rejections"].items()) or "-",
            f"{ewma:.2f}" if ewma is not None else "-",
            f"{adm['retry_after_hint_s']:.1f}",
        ]],
    ))
    return "\n\n".join(sections)


def dump_catalog(catalog) -> str:
    """The archive catalog's status tables — `qstat` for the archival
    pipeline (requests, bundles, component claims, status counts)."""
    snap = catalog.snapshot()
    sections = [f"archive catalog @ t={snap['now']:.2f}s"]
    sections.append(render_table(
        f"archive requests ({len(snap['requests'])})",
        ["request", "user", "status", "files", "bundles", "attempts", "dests"],
        [
            [r["request"], r["user"], r["status"], r["files"], r["bundles"],
             r["attempts"], r["dests"]]
            for r in snap["requests"]
        ],
    ))
    sections.append(render_table(
        f"bundles ({len(snap['bundles'])})",
        ["bundle", "request", "status", "files", "bytes", "attempts",
         "replicas", "checksum"],
        [
            [b["bundle"], b["request"], b["status"], b["files"], b["bytes"],
             b["attempts"], b["replicas"], b["checksum"]]
            for b in snap["bundles"]
        ],
    ))
    sections.append(render_table(
        f"component claims ({len(snap['leases'])})",
        ["item", "component", "expires_at", "abandoned"],
        [
            [le["item"], le["component"], f"{le['expires_at']:.2f}",
             le["abandoned"]]
            for le in snap["leases"]
        ],
    ))
    counts = snap["counts"]
    sections.append(render_table(
        "bundle status counts",
        list(counts), [list(counts.values())],
    ))
    return "\n\n".join(sections)


def _demo(seed: int, shards: int | None = None) -> str:
    """A scheduler frozen mid-drain: queued backlog, one live lease,
    one downed worker host.  With ``shards`` the same freeze-frame runs
    on the sharded control plane."""
    from repro.scheduler import ScheduledTask, SchedulerConfig, ShardedFleetScheduler
    from repro.sim.world import World

    world = World(seed=seed)
    world.faults.crash_host("wh-1", 0.0, 900.0)
    config = SchedulerConfig(
        workers=max(2, shards or 0), worker_hosts=("wh-0", "wh-1"),
        batch_threshold_bytes=0)
    if shards is None:
        sched = FleetScheduler(world, config)
    else:
        sched = ShardedFleetScheduler(world, config, shards=shards)
    for i in range(5):
        sched.submit(ScheduledTask(
            task_id=f"task-{i:06d}", user=f"user{i % 3}",
            src_endpoint="alcf#dtn", dst_endpoint="nersc#dtn",
            size_hint=(i + 1) * 1_000_000, execute=lambda: None,
        ))
    world.advance(12.5)
    # claim a head task by hand so a lease table has a live entry
    claim_on = sched if shards is None else next(
        s for s in sched.shards if len(s.queue))
    task = claim_on.queue.pop_next()
    task.attempts += 1
    claim_on.leases.grant(task, claim_on.workers[0].worker_id,
                          world.now, claim_on.config.lease_s)
    return dump(sched)


def _archive_demo(seed: int) -> str:
    """An archival campaign frozen mid-flight: the picker and bundler
    have run, the replicator holds claims with transfers queued."""
    from repro.archive import ArchivalCampaign, CampaignConfig

    campaign = ArchivalCampaign(CampaignConfig(
        seed=seed, chaos=False, site_blackout=False).quick())
    for request in campaign.requests:
        campaign.catalog.submit(request)
    while campaign.picker.cycle():
        pass
    while campaign.bundler.cycle():
        pass
    campaign.replicator.cycle()  # submits replica transfers, none drained
    return "\n\n".join([dump_catalog(campaign.catalog),
                        dump(campaign.scheduler)])


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--shards", type=int, default=None,
                        help="demo the sharded control plane with N shards")
    parser.add_argument("--archive", action="store_true",
                        help="demo the archive catalog tables on a "
                             "mid-flight archival campaign")
    args = parser.parse_args(argv)
    if args.archive:
        print(_archive_demo(args.seed))
    else:
        print(_demo(args.seed, shards=args.shards))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
