#!/usr/bin/env python
"""Mission control: one snapshot dashboard for a simulated fleet.

``render(world, scheduler, breaker=...)`` assembles the operator view
the REST portal will eventually serve: per-user queue depths and
fair-share virtual tags, outstanding leases ordered by expiry, circuit
breaker states per endpoint, SLO burn rates with alert status, and the
top-N slowest flight records (with their exemplar trace ids, so a row
here links to a ``# {trace_id=...}`` exemplar in the Prometheus text).
A ``ShardedFleetScheduler`` renders one lane/lease/admission panel set
per shard under a fleet-totals header (``--shards N`` in the demo).
Pass ``catalog=`` an archive :class:`~repro.archive.Catalog` to prepend
the archival pipeline's panels — per-request fan-out, bundle counts by
state-machine status, live component claims (``--archive`` in the demo
runs a quick chaos campaign and renders its aftermath).

Requires ``world.enable_observability()`` for the SLO and flight
recorder panels; without it those panels report "not attached".  Run
directly for a self-contained chaos demo:

    PYTHONPATH=src python tools/mission_control.py
    PYTHONPATH=src python tools/mission_control.py --seed 11 --top 5
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.metrics.report import render_table  # noqa: E402


def _fmt_vt(value: float | None) -> str:
    return f"{value:.0f}" if value is not None else "-"


def _scheduler_panels(snap: dict, prefix: str = "") -> list[str]:
    """Lane, lease, and admission tables for one scheduler (or one
    shard of a sharded control plane)."""
    panels = [render_table(
        f"{prefix}fair-share lanes ({len(snap['lanes'])} users, "
        f"global vtime {snap['global_vtime']:.0f})",
        ["user", "depth", "weight", "vtime_tag", "delivered_bytes"],
        [
            [ln["user"], ln["depth"], f"{ln['weight']:g}",
             _fmt_vt(ln["vtime"]), ln["delivered_bytes"]]
            for ln in snap["lanes"]
        ],
    )]
    panels.append(render_table(
        f"{prefix}outstanding leases ({len(snap['expiry_heap'])}, by expiry)",
        ["task", "worker", "expires_in_s", "abandoned"],
        [
            [le["task"], le["worker"], f"{le['expires_in_s']:.1f}",
             le["abandoned"]]
            for le in snap["expiry_heap"]
        ],
    ))
    adm = snap["admission"]
    ewma = adm["service_ewma_s"]
    panels.append(render_table(
        f"{prefix}admission control",
        ["rejections", "service_ewma_s", "retry_after_hint_s"],
        [[
            ", ".join(f"{k}={v}" for k, v in adm["rejections"].items()) or "-",
            f"{ewma:.2f}" if ewma is not None else "-",
            f"{adm['retry_after_hint_s']:.1f}",
        ]],
    ))
    return panels


def _catalog_panels(catalog) -> list[str]:
    """Archival pipeline panels: per-request fan-out, bundle status
    counts, and the component claims currently in flight."""
    snap = catalog.snapshot()
    panels = [render_table(
        f"archive requests ({len(snap['requests'])})",
        ["request", "user", "status", "files", "bundles", "attempts"],
        [
            [r["request"], r["user"], r["status"], r["files"],
             r["bundles"], r["attempts"]]
            for r in snap["requests"]
        ],
    )]
    counts = snap["counts"]
    panels.append(render_table(
        "bundle pipeline (by status)",
        list(counts), [list(counts.values())],
    ))
    panels.append(render_table(
        f"component claims ({len(snap['leases'])})",
        ["item", "component", "expires_at", "abandoned"],
        [
            [le["item"], le["component"], f"{le['expires_at']:.2f}",
             le["abandoned"]]
            for le in snap["leases"]
        ],
    ))
    return panels


def render(world, scheduler=None, breaker=None, catalog=None,
           top: int = 10) -> str:
    """The full dashboard as one printable block."""
    sections = [f"mission control @ t={world.now:.2f}s (virtual)"]

    if catalog is not None:
        sections.extend(_catalog_panels(catalog))

    if scheduler is not None:
        snap = scheduler.snapshot()
        if "shards" in snap:
            sections.append(
                f"sharded control plane: {snap['n_shards']} shards, "
                f"{snap['queued_total']} queued, "
                f"{snap['leases_total']} leases outstanding")
            for shard_snap in snap["shards"]:
                sections.extend(
                    _scheduler_panels(shard_snap,
                                      prefix=f"shard {shard_snap['shard']} "))
        else:
            sections.extend(_scheduler_panels(snap))

    if breaker is not None:
        endpoints = breaker.endpoints()
        sections.append(render_table(
            f"circuit breakers ({len(endpoints)} endpoints)",
            ["endpoint", "state", "failures", "times_opened", "retry_after_s"],
            [
                [ep, breaker.state(ep).value, breaker.failures(ep),
                 breaker.times_opened(ep), f"{breaker.retry_after_s(ep):.1f}"]
                for ep in endpoints
            ],
        ))

    # session-layer caches: the wall-clock amortization tier (DESIGN.md
    # §17) — reuse ratios at a glance, invalidations proving the chaos /
    # expiry rules are actually firing
    from repro.gsi.session_cache import default_session_cache

    pool = getattr(world, "_control_channel_pool", None)
    gsi = default_session_cache().stats()
    rows = [["gsi resumption (process)", gsi["hits"], gsi["misses"],
             gsi["expirations"], gsi["evictions"], gsi["tokens"]]]
    if pool is not None:
        ps = pool.stats()
        rows.insert(0, ["control-channel pool", ps["reuses"], ps["misses"],
                        ps["invalidations"], ps["evictions"], ps["pooled"]])
    sections.append(render_table(
        "session caches (wall-clock only; REPRO_NO_SESSION_CACHE=1 disables)",
        ["layer", "hits", "misses", "invalidated", "evicted", "live"],
        rows,
    ))

    slo = getattr(world, "slo", None)
    if slo is not None:
        rows = []
        for row in slo.status():
            burn = " ".join(f"{w}={b:g}x" for w, b in row["burn"].items())
            rows.append([
                row["slo"], f"{row['objective']:.0%}", row["good"], row["bad"],
                burn, f"{row['budget_remaining']:g}",
                "FIRING" if row["alert"] else "ok",
                row["exemplar_trace"] or "-",
            ])
        sections.append(render_table(
            "SLO burn rates",
            ["slo", "objective", "good", "bad", "burn", "budget_left",
             "alert", "exemplar"],
            rows,
        ))
    else:
        sections.append("SLO engine: not attached "
                        "(call world.enable_observability())")

    recorder = getattr(world, "flight_recorder", None)
    if recorder is not None:
        rows = []
        for rec in recorder.slowest(top, by="total_s"):
            rows.append([
                rec.task_id, rec.user, rec.status, rec.attempts,
                f"{rec.queue_wait_s:.1f}", f"{rec.total_s:.1f}",
                rec.recovery_faults, rec.trace_id or "-",
            ])
        sections.append(render_table(
            f"slowest flight records (top {top} of {len(recorder)})",
            ["task", "user", "status", "attempts", "wait_s", "total_s",
             "faults", "trace"],
            rows,
        ))
    else:
        sections.append("flight recorder: not attached "
                        "(call world.enable_observability())")

    return "\n\n".join(sections)


def _demo(seed: int, top: int, shards: int | None = None) -> str:
    """A small chaotic fleet drained to idle, then snapshotted."""
    from repro.scheduler import (
        FleetScheduler, ScheduledTask, SchedulerConfig, ShardedFleetScheduler,
    )
    from repro.sim.world import World

    world = World(seed=seed)
    world.enable_observability(queue_wait_slo_s=120.0)
    world.faults.crash_host("wh-1", 60.0, 120.0)
    config = SchedulerConfig(
        workers=max(2, shards or 0), worker_hosts=("wh-0", "wh-1"),
        lease_s=40.0, heartbeat_s=8.0, batch_threshold_bytes=0)
    if shards is None:
        sched = FleetScheduler(world, config)
    else:
        sched = ShardedFleetScheduler(world, config, shards=shards)

    def payload(duration_s: float):
        def run():
            world.advance(duration_s)
        return run

    rng = world.rng.python("mission-control-demo")
    for i in range(12):
        sched.submit(ScheduledTask(
            task_id=f"task-{i:06d}", user=f"user{i % 4}",
            src_endpoint="alcf#dtn", dst_endpoint="nersc#dtn",
            size_hint=(i + 1) * 4_000_000,
            execute=payload(rng.uniform(10.0, 40.0)),
        ))
    sched.run_until_idle()
    return render(world, sched, top=top)


def _archive_demo(seed: int, top: int) -> str:
    """A quick chaos-soaked archival campaign, dashboarded post-run."""
    from repro.archive import ArchivalCampaign, CampaignConfig

    campaign = ArchivalCampaign(CampaignConfig(seed=seed).quick())
    campaign.run()
    return render(campaign.world, campaign.scheduler,
                  catalog=campaign.catalog, top=top)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--top", type=int, default=10,
                        help="slowest flight records to show")
    parser.add_argument("--shards", type=int, default=None,
                        help="demo the sharded control plane with N shards")
    parser.add_argument("--archive", action="store_true",
                        help="demo the dashboard on a quick archival "
                             "chaos campaign")
    args = parser.parse_args(argv)
    if args.archive:
        print(_archive_demo(args.seed, args.top))
    else:
        print(_demo(args.seed, args.top, shards=args.shards))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
