"""Approximate line coverage of src/repro without coverage.py.

CI pins ``--cov-fail-under`` in the coverage job; this script exists so
the pinned number can be re-derived in an environment where pytest-cov
is not installable.  It traces line events for files under ``src/repro``
while running the test suite, then compares against the executable-line
candidates from each module's compiled code objects (``co_lines``).

The result tracks coverage.py within a couple of percent (docstring and
``TYPE_CHECKING`` accounting differ slightly); pin the CI floor a few
points below what this reports.

Usage: PYTHONPATH=src python tools/measure_coverage.py [pytest args...]
"""

from __future__ import annotations

import pathlib
import sys

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"
SRC_PREFIX = str(SRC)

hits: dict[str, set[int]] = {}


def _tracer(frame, event, arg):
    filename = frame.f_code.co_filename
    if not filename.startswith(SRC_PREFIX):
        return None  # do not trace foreign frames at all
    if event == "line":
        hits.setdefault(filename, set()).add(frame.f_lineno)
    return _tracer


def _candidate_lines(path: pathlib.Path) -> set[int]:
    code = compile(path.read_text(), str(path), "exec")
    lines: set[int] = set()
    stack = [code]
    while stack:
        c = stack.pop()
        lines.update(ln for _, _, ln in c.co_lines() if ln is not None)
        stack.extend(k for k in c.co_consts if hasattr(k, "co_lines"))
    return lines


def main(argv: list[str]) -> int:
    import pytest

    sys.settrace(_tracer)
    try:
        rc = pytest.main(argv or ["-q", "-p", "no:cacheprovider", "tests"])
    finally:
        sys.settrace(None)
    if rc != 0:
        print(f"pytest exited {rc}; coverage numbers below are partial",
              file=sys.stderr)

    total = covered = 0
    per_file: list[tuple[float, str, int, int]] = []
    for path in sorted(SRC.rglob("*.py")):
        cand = _candidate_lines(path)
        got = hits.get(str(path), set()) & cand
        total += len(cand)
        covered += len(got)
        pct = 100.0 * len(got) / len(cand) if cand else 100.0
        per_file.append((pct, str(path.relative_to(SRC)), len(got), len(cand)))

    per_file.sort()
    for pct, name, got, cand in per_file:
        print(f"{pct:6.1f}%  {got:5d}/{cand:<5d}  {name}")
    overall = 100.0 * covered / total if total else 100.0
    print(f"\nTOTAL {overall:.2f}%  ({covered}/{total} executable lines)")
    return rc


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
