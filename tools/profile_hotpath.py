#!/usr/bin/env python
"""cProfile the fleet transfer hot path and print the top offenders.

Runs the same scenario as ``benchmarks/bench_wallclock_fleet.py``
(quick-sized by default) under cProfile and prints the top functions by
cumulative time — the tool that found the route-walk, fault-scan, and
fingerprint hot spots this codebase's caches now cover.

    python tools/profile_hotpath.py            # 1k files, top 20
    python tools/profile_hotpath.py --full     # the full 10k-file phase
    python tools/profile_hotpath.py --top 40   # more rows
    python tools/profile_hotpath.py --striped  # profile the striped phase
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.workloads.fleet import (  # noqa: E402
    FleetTransferScenario,
    FleetWorkloadConfig,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--full", action="store_true",
                        help="profile the full 10k-file phase (default: quick 1k)")
    parser.add_argument("--striped", action="store_true",
                        help="profile the multi-GiB striped phase instead")
    parser.add_argument("--top", type=int, default=20,
                        help="rows to print (default 20)")
    parser.add_argument("--sort", default="cumulative",
                        choices=["cumulative", "tottime", "ncalls"],
                        help="pstats sort key (default cumulative)")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the scenario seed")
    args = parser.parse_args(argv)

    cfg = FleetWorkloadConfig()
    if not args.full:
        cfg = cfg.quick()
    if args.seed is not None:
        from dataclasses import replace

        cfg = replace(cfg, seed=args.seed)

    scenario = FleetTransferScenario(cfg)
    profiler = cProfile.Profile()
    profiler.enable()
    if args.striped:
        stats = scenario.run_striped()
    else:
        stats = scenario.run_small_files()
    profiler.disable()

    out = io.StringIO()
    pstats.Stats(profiler, stream=out).sort_stats(args.sort).print_stats(args.top)
    print(out.getvalue())
    print(
        f"profiled: {stats.transfers} transfers, {stats.bytes_moved} bytes, "
        f"{stats.blocks_planned} blocks planned"
    )
    info = scenario.world.network.route_cache_info()
    print(f"route cache: {info['hits']} hits / {info['misses']} misses")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
