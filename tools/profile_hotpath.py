#!/usr/bin/env python
"""cProfile the fleet transfer hot path and print the top offenders.

Runs the same scenario as ``benchmarks/bench_wallclock_fleet.py``
(quick-sized by default) under cProfile and prints the top functions by
cumulative time — the tool that found the route-walk, fault-scan, and
fingerprint hot spots this codebase's caches now cover.

    python tools/profile_hotpath.py             # 1k files, top 20
    python tools/profile_hotpath.py --full      # the full 10k-file phase
    python tools/profile_hotpath.py --top 40    # more rows
    python tools/profile_hotpath.py --striped   # profile the striped phase
    python tools/profile_hotpath.py --scheduler # fleet-scheduler drain

Every mode ends with the event-engine batch report (run-length
histogram, batched vs scalar firing counts) — the wallclock phases fire
no absolute-time events, so the drain mode is where batching shows.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.util import opcount  # noqa: E402
from repro.util.vector import VECTOR_BACKEND  # noqa: E402
from repro.workloads.fleet import (  # noqa: E402
    FleetTransferScenario,
    FleetWorkloadConfig,
)


def print_crypto_report(ops_before) -> None:
    """Crypto-op tallies for the profiled run (the CI gate's numbers).

    Deterministic per (seed, scenario): the ``*.resumed`` / ``*.memo`` /
    ``*.cached`` rows are work the session caches skipped; their
    ``*.full`` twins creeping up is a cache that stopped hitting.
    """
    ops = opcount.since(ops_before)
    if not ops:
        print("crypto ops: none recorded")
        return
    width = max(len(name) for name in ops)
    print("crypto ops (seeded-deterministic; gated exactly in CI):")
    for name in sorted(ops):
        print(f"  {name:<{width}}  {ops[name]}")


def print_batch_report(world) -> None:
    """Event-engine batching counters (the CI regression artifact).

    A healthy vectorized core shows most fired events inside runs of
    length >= 2; a batching regression (timestamp jitter splitting
    cohorts, say) shows up here as the scalar share creeping up long
    before it costs enough wall time to trip the bench gates.
    """
    stats = world.scheduler.stats
    total = stats.total_events
    print(f"vector backend: {VECTOR_BACKEND}")
    print(
        f"event batches: {stats.runs} runs, {total} events fired "
        f"({stats.batched_events} batched / {stats.scalar_events} scalar), "
        f"max run {stats.max_run}"
    )
    hist = stats.run_histogram()
    if hist:
        width = max(len(str(b)) for b in hist)
        for bucket, count in hist.items():
            print(f"  run length >= {bucket:>{width}}: {count} runs")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--full", action="store_true",
                        help="profile the full 10k-file phase (default: quick 1k)")
    parser.add_argument("--striped", action="store_true",
                        help="profile the multi-GiB striped phase instead")
    parser.add_argument("--scheduler", action="store_true",
                        help="profile the fleet-scheduler drain instead "
                             "(500 jobs / 50 users, the bench quick tier)")
    parser.add_argument("--top", type=int, default=20,
                        help="rows to print (default 20)")
    parser.add_argument("--sort", default="cumulative",
                        choices=["cumulative", "tottime", "ncalls"],
                        help="pstats sort key (default cumulative)")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the scenario seed")
    args = parser.parse_args(argv)

    if args.scheduler:
        return profile_scheduler(args)

    cfg = FleetWorkloadConfig()
    if not args.full:
        cfg = cfg.quick()
    if args.seed is not None:
        from dataclasses import replace

        cfg = replace(cfg, seed=args.seed)

    scenario = FleetTransferScenario(cfg)
    ops_before = opcount.snapshot()
    profiler = cProfile.Profile()
    profiler.enable()
    if args.striped:
        stats = scenario.run_striped()
    else:
        stats = scenario.run_small_files()
    profiler.disable()

    out = io.StringIO()
    pstats.Stats(profiler, stream=out).sort_stats(args.sort).print_stats(args.top)
    print(out.getvalue())
    print(
        f"profiled: {stats.transfers} transfers, {stats.bytes_moved} bytes, "
        f"{stats.blocks_planned} blocks planned"
    )
    info = scenario.world.network.route_cache_info()
    print(f"route cache: {info['hits']} hits / {info['misses']} misses")
    print_batch_report(scenario.world)
    print_crypto_report(ops_before)
    return 0


def profile_scheduler(args) -> int:
    """Profile the fleet-scheduler drain (the bench quick workload)."""
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    from bench_scheduler_fleet import build_fleet

    from repro.storage.data import SyntheticData
    from repro.util.units import KB, MB

    seed = 7 if args.seed is None else args.seed
    users, jobs = 50, 500
    world, go, ep_a, _ep_b = build_fleet(seed=seed, users=users)
    accounts = []
    for u in range(users):
        account = go.register_user(f"user{u}@globusid")
        go.activate(account, "alcf#dtn", f"user{u}", f"pw{u}")
        go.activate(account, "nersc#dtn", "sink", "pwS")
        accounts.append(account)
    for n in range(jobs):
        u = n % users
        username = f"user{u}"
        uid = ep_a.accounts.get(username).uid
        small = (n // users) % 4 != 3
        size = 256 * KB if small else 8 * MB
        path = f"/home/{username}/j{n}.dat"
        ep_a.storage.write_file(path, SyntheticData(seed=n, length=size), uid=uid)
        go.submit_transfer(accounts[u], "alcf#dtn", path, "nersc#dtn",
                           f"/home/sink/{username}-j{n}.dat", defer=True)

    ops_before = opcount.snapshot()
    profiler = cProfile.Profile()
    profiler.enable()
    go.process_queue()
    profiler.disable()

    out = io.StringIO()
    pstats.Stats(profiler, stream=out).sort_stats(args.sort).print_stats(args.top)
    print(out.getvalue())
    print(f"profiled: {jobs} jobs / {users} users drained")
    print_batch_report(world)
    print_crypto_report(ops_before)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
