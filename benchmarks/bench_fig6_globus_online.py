"""FIG6 — Figure 6: Globus Online / GCMU interaction.

The full hosted-service story: endpoint registration, password
activation (the credential-exposure trail), a 100 GB transfer with an
injected mid-transfer outage, automatic re-authentication with the
stored short-term certificate, and checkpoint restart.  Compares the
bytes re-sent against a restart-from-zero strawman.
"""

from benchmarks._harness import report, run_once
from repro.globusonline.service import GlobusOnline
from repro.globusonline.transfer import JobStatus
from repro.metrics.report import render_table
from repro.scenarios import gcmu_site
from repro.sim.world import World
from repro.storage.data import SyntheticData
from repro.util.units import GB, fmt_bytes, fmt_duration, gbps

PAYLOAD = 100 * GB


def run_fig6():
    world = World(seed=6)
    net = world.network
    for h in ("dtn-a", "dtn-b", "saas"):
        net.add_host(h, nic_bps=gbps(10))
    inter = net.add_link("dtn-a", "dtn-b", gbps(10), 0.04, loss=1e-6)
    net.add_link("saas", "dtn-a", gbps(1), 0.02)
    net.add_link("saas", "dtn-b", gbps(1), 0.02)

    go = GlobusOnline(world, "saas")
    ep_a = gcmu_site(world, "dtn-a", "alcf", {"alice": "pwA"},
                     register_with=go, endpoint_name="alcf#dtn")
    ep_b = gcmu_site(world, "dtn-b", "nersc", {"asmith": "pwB"},
                     register_with=go, endpoint_name="nersc#dtn")
    uid = ep_a.accounts.get("alice").uid
    data = SyntheticData(seed=60, length=PAYLOAD)
    ep_a.storage.write_file("/home/alice/archive.dat", data, uid=uid)

    user = go.register_user("alice@globusid")
    go.activate(user, "alcf#dtn", "alice", "pwA")
    go.activate(user, "nersc#dtn", "asmith", "pwB")
    exposure = sorted({e.fields["party"]
                       for e in world.log.select("credential.exposure")})

    # the outage strikes ~40% into the transfer
    world.faults.cut_link(inter.link_id, at=world.now + 60.0, duration=90.0)
    t0 = world.now
    job = go.submit_transfer(user, "alcf#dtn", "/home/alice/archive.dat",
                             "nersc#dtn", "/home/asmith/archive.dat")
    elapsed = world.now - t0

    uid_b = ep_b.accounts.get("asmith").uid
    dest_ok = (ep_b.storage.open_read("/home/asmith/archive.dat", uid_b)
               .fingerprint() == data.fingerprint())
    resent = job.result.nbytes - (PAYLOAD - job.bytes_at_checkpoint)
    return job, elapsed, exposure, dest_ok, resent


def test_fig6_globus_online_fault_recovery(benchmark):
    job, elapsed, exposure, dest_ok, resent = run_once(benchmark, run_fig6)
    checkpoint = job.bytes_at_checkpoint
    rows = [
        ["job status", job.status.value.upper()],
        ["attempts (re-auth per retry)", job.attempts],
        ["faults survived", job.faults_survived],
        ["checkpoint at interruption", fmt_bytes(checkpoint)],
        ["bytes moved on retry", fmt_bytes(PAYLOAD - checkpoint)],
        ["bytes saved vs restart-from-zero", fmt_bytes(checkpoint)],
        ["total elapsed (virtual)", fmt_duration(elapsed)],
        ["destination verified", dest_ok],
        ["password exposure during activation", ", ".join(exposure)],
    ]
    report("fig6_globus_online", render_table(
        f"Figure 6 (reproduced): {PAYLOAD // GB} GB Globus Online transfer "
        "with a mid-flight outage",
        ["metric", "value"],
        rows,
    ))
    assert job.status is JobStatus.SUCCEEDED
    assert job.faults_survived == 1
    assert dest_ok
    assert checkpoint > 0.1 * PAYLOAD  # the checkpoint saved real work
    assert "globusonline" in exposure  # Figure 6 path: GO sees the password
