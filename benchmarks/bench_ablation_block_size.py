"""ABLATION — mode E block size: restart granularity vs framing overhead.

Blocks are the unit of restartability: a fault mid-block loses that
whole block.  Small blocks waste less on interruption but cost more
header bytes; big blocks amortize headers but throw away more work per
fault.  The sweep interrupts a 10 GB transfer and reports wasted bytes
and header overhead per block size — the 256 KiB Globus default sits in
the flat middle.
"""

from benchmarks._harness import report, run_once
from repro.errors import TransferFaultError
from repro.gridftp.dcau import DataChannelSecurity, DCAUMode
from repro.gridftp.mode_e import plan_blocks
from repro.gridftp.transfer import SinkSpec, SourceSpec, TransferEngine, TransferOptions
from repro.metrics.report import render_table
from repro.pki.validation import TrustStore
from repro.sim.world import World
from repro.storage.data import SyntheticData
from repro.storage.posix import PosixStorage
from repro.util.units import GB, KB, MB, fmt_bytes, gbps

PAYLOAD = 10 * GB
BLOCK_SIZES = (64 * KB, 256 * KB, 1 * MB, 16 * MB, 256 * MB, 1 * GB)
HEADER_BYTES = 17


def interrupted_run(block_size):
    world = World(seed=23)
    net = world.network
    net.add_host("src", nic_bps=gbps(10))
    net.add_host("dst", nic_bps=gbps(10))
    link = net.add_link("src", "dst", gbps(10), 0.01, loss=0.0)
    # cut exactly mid-transfer
    world.faults.cut_link(link.link_id, at=world.now + 5.0, duration=30.0)

    fs_src = PosixStorage(world.clock)
    fs_src.makedirs("/d", 0)
    fs_dst = PosixStorage(world.clock)
    fs_dst.makedirs("/d", 0)
    data = SyntheticData(seed=23, length=PAYLOAD)
    fs_src.write_file("/d/f", data)
    none = lambda n: DataChannelSecurity(mode=DCAUMode.NONE, credential=None,
                                         trust=TrustStore(), endpoint_name=n)
    source = SourceSpec(hosts=("src",), data=fs_src.open_read("/d/f", 0),
                        security=none("s"))
    sink = SinkSpec(hosts=("dst",), sink=fs_dst.open_write("/d/f", 0, PAYLOAD),
                    security=none("d"))
    opts = TransferOptions(parallelism=8, tcp_window_bytes=16 * MB,
                           block_size=block_size)
    try:
        TransferEngine(world).execute(source, sink, opts)
        raise AssertionError("fault did not fire")
    except TransferFaultError as fault:
        received = fault.received.total_bytes()
    # delivered-but-unacknowledged = the cut block's worth of work
    rate = 0  # informational only; wasted = what a resume must re-fetch
    del rate
    blocks = len(plan_blocks(PAYLOAD, block_size))
    header_overhead = blocks * HEADER_BYTES
    return received, header_overhead, blocks


def run_ablation():
    results = []
    baseline_received = None
    for block_size in BLOCK_SIZES:
        received, header_overhead, blocks = interrupted_run(block_size)
        if baseline_received is None:
            baseline_received = received
        # bytes lost to coarse acking = best case (tiny blocks) minus actual
        lost = baseline_received - received
        results.append((block_size, received, lost, header_overhead, blocks))
    return results


def test_ablation_block_size(benchmark):
    results = run_once(benchmark, run_ablation)
    rows = [
        [fmt_bytes(bs), fmt_bytes(received), fmt_bytes(max(0, lost)),
         fmt_bytes(header), f"{blocks:,}"]
        for bs, received, lost, header, blocks in results
    ]
    report("ablation_block_size", render_table(
        f"ABLATION: mode E block size under a mid-transfer fault "
        f"({PAYLOAD // GB} GB)",
        ["block size", "checkpointed at fault", "work lost vs 64 KiB",
         "header bytes", "blocks"],
        rows,
    ))
    by_size = {bs: (received, lost, header) for bs, received, lost, header, _ in results}
    # giant blocks lose real work on interruption...
    assert by_size[1 * GB][1] > by_size[1 * MB][1]
    # ...while tiny blocks pay orders of magnitude more header overhead
    assert by_size[64 * KB][2] > 100 * by_size[256 * MB][2]
    # the default (256 KiB) loses almost nothing vs the finest granularity
    assert by_size[256 * KB][1] < 0.001 * PAYLOAD
