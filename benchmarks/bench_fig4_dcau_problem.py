"""FIG4 — Figure 4: the data channel authentication problem.

A matrix of third-party transfers between endpoints whose trust domains
do and do not overlap, all without DCSC.  Same-domain pairs succeed;
cross-domain pairs fail at DCAU with the exact trust-root error the
paper diagrams.
"""

from benchmarks._harness import report, run_once
from repro.errors import DCAUError
from repro.gridftp.client import GridFTPClient
from repro.gridftp.third_party import third_party_transfer
from repro.metrics.report import render_table
from repro.myproxy.client import myproxy_logon
from repro.pki.validation import TrustStore
from repro.scenarios import gcmu_site
from repro.sim.world import World
from repro.storage.data import LiteralData
from repro.util.units import gbps, mbps


def build(world):
    net = world.network
    for h in ("dtn-a", "dtn-b", "dtn-c", "laptop"):
        net.add_host(h, nic_bps=gbps(10))
    net.add_router("wan")
    for h in ("dtn-a", "dtn-b", "dtn-c"):
        net.add_link(h, "wan", gbps(10), 0.02, loss=1e-6)
    net.add_link("laptop", "wan", mbps(50), 0.02)

    ep_a = gcmu_site(world, "dtn-a", "alcf", {"alice": "pw"})
    ep_b = gcmu_site(world, "dtn-b", "nersc", {"alice": "pw"})
    # site C shares site A's trust domain (a second server run by ALCF):
    # it accepts certificates from A's MyProxy CA.
    ep_c = gcmu_site(world, "dtn-c", "alcf-two", {"alice": "pw"})
    ep_c.server.trust.add_anchor(ep_a.myproxy.ca.certificate)
    from repro.gsi.gridmap import Gridmap

    gm = Gridmap()
    gm.add(ep_a.myproxy.user_subject("alice"), "alice")
    ep_c.server.authz.fallback = gm
    return {"alcf": ep_a, "nersc": ep_b, "alcf-two": ep_c}


def run_fig4():
    world = World(seed=4)
    endpoints = build(world)
    trust = TrustStore()
    creds = {
        name: myproxy_logon(world, "laptop", ep.myproxy, "alice", "pw", trust=trust)
        for name, ep in endpoints.items()
    }
    for name, ep in endpoints.items():
        uid = ep.accounts.get("alice").uid
        ep.storage.write_file("/home/alice/f.bin", LiteralData(b"x" * 4096), uid=uid)

    outcomes = []
    pairs = [("alcf", "alcf-two"), ("alcf", "nersc"), ("nersc", "alcf"),
             ("nersc", "alcf-two")]
    for src_name, dst_name in pairs:
        src_ep, dst_ep = endpoints[src_name], endpoints[dst_name]
        # within one trust domain the user logs into both endpoints with
        # the SAME credential (the classic single-CA world); across
        # domains each endpoint requires its own site's credential.
        dst_cred_name = src_name if (src_name, dst_name) == ("alcf", "alcf-two") else dst_name
        sa = GridFTPClient(world, "laptop", credential=creds[src_name],
                           trust=trust).connect(src_ep.server)
        sb = GridFTPClient(world, "laptop", credential=creds[dst_cred_name],
                           trust=trust).connect(dst_ep.server)
        try:
            third_party_transfer(sa, "/home/alice/f.bin", sb,
                                 f"/home/alice/from-{src_name}.bin")
            outcomes.append((src_name, dst_name, "OK", ""))
        except DCAUError as exc:
            outcomes.append((src_name, dst_name, "DCAU FAILED", str(exc)[:60]))
        sa.quit(); sb.quit()
    return outcomes


def test_fig4_dcau_problem_matrix(benchmark):
    outcomes = run_once(benchmark, run_fig4)
    report("fig4_dcau_problem", render_table(
        "Figure 4 (reproduced): third-party DCAU without DCSC",
        ["source", "destination", "outcome", "error"],
        [list(o) for o in outcomes],
    ))
    by_pair = {(s, d): o for s, d, o, _ in outcomes}
    # same trust domain: works
    assert by_pair[("alcf", "alcf-two")] == "OK"
    # disjoint domains: the Figure 4 failure, in both directions
    assert by_pair[("alcf", "nersc")] == "DCAU FAILED"
    assert by_pair[("nersc", "alcf")] == "DCAU FAILED"
    assert by_pair[("nersc", "alcf-two")] == "DCAU FAILED"
