"""CLAIM-RELIA — Section I: FTP/SCP have "poor ... reliability";
GridFTP adds "increased reliability via restart markers".

A 100 GB transfer is interrupted at 30%, 60% and 90% of completion.
GridFTP resumes from range markers (bytes wasted ~ 0); SCP restarts from
zero (bytes wasted = everything delivered so far); plain FTP with
stream-mode REST resumes but from a single coarse offset.
"""

from benchmarks._harness import report, run_once
from repro.baselines.ftp_plain import PlainFtpTool
from repro.baselines.scp import ScpTool
from repro.gridftp.client import GridFTPClient
from repro.gridftp.third_party import third_party_with_restart
from repro.gridftp.transfer import TransferOptions
from repro.metrics.report import render_table
from repro.myproxy.client import myproxy_logon
from repro.pki.validation import TrustStore
from repro.scenarios import gcmu_site
from repro.sim.world import World
from repro.storage.data import SyntheticData
from repro.util.units import GB, MB, fmt_bytes, fmt_duration, gbps

PAYLOAD = 100 * GB
FAULT_FRACTIONS = (0.3, 0.6, 0.9)
OPTS = TransferOptions(parallelism=16, tcp_window_bytes=16 * MB)


def build_world():
    world = World(seed=16)
    net = world.network
    net.add_host("dtn-a", nic_bps=gbps(10))
    net.add_host("dtn-b", nic_bps=gbps(10))
    net.add_host("laptop", nic_bps=gbps(1))
    link = net.add_link("dtn-a", "dtn-b", gbps(10), 0.02, loss=1e-6)
    net.add_link("laptop", "dtn-a", gbps(1), 0.01)
    net.add_link("laptop", "dtn-b", gbps(1), 0.01)
    return world, link.link_id


def gridftp_run(fault_fraction):
    world, link = build_world()
    ep_a = gcmu_site(world, "dtn-a", "a", {"alice": "pw"})
    ep_b = gcmu_site(world, "dtn-b", "b", {"alice": "pw"})
    uid = ep_a.accounts.get("alice").uid
    ep_a.storage.write_file("/home/alice/f.dat",
                            SyntheticData(seed=1, length=PAYLOAD), uid=uid)
    trust = TrustStore()
    cred_a = myproxy_logon(world, "laptop", ep_a.myproxy, "alice", "pw", trust=trust)
    cred_b = myproxy_logon(world, "laptop", ep_b.myproxy, "alice", "pw", trust=trust)
    sa = GridFTPClient(world, "laptop", credential=cred_a, trust=trust).connect(ep_a.server)
    sb = GridFTPClient(world, "laptop", credential=cred_b, trust=trust).connect(ep_b.server)
    # schedule the cut at the chosen completion fraction
    from repro.gridftp.transfer import estimate_rate_bps

    rate = estimate_rate_bps(world, "dtn-a", "dtn-b", OPTS)
    fault_at = world.now + 5.0 + PAYLOAD * 8 / rate * fault_fraction
    world.faults.cut_link(link, at=fault_at, duration=30.0)
    t0 = world.now
    result, attempts = third_party_with_restart(
        sa, "/home/alice/f.dat", sb, "/home/alice/f.dat", OPTS, use_dcsc=cred_a)
    # wasted = bytes sent in total minus the payload
    wasted = max(0, result.nbytes - PAYLOAD)  # resumed runs send only the rest
    return world.now - t0, wasted, attempts


def scp_run(fault_fraction):
    world, link = build_world()
    scp = ScpTool(world, "dtn-a")
    rate = scp.estimated_rate_bps("dtn-a", "dtn-b")
    fault_at = world.now + PAYLOAD * 8 / rate * fault_fraction
    world.faults.cut_link(link, at=fault_at, duration=30.0)
    t0 = world.now
    res = scp.copy("dtn-a", "dtn-b", PAYLOAD)
    return world.now - t0, res.wasted_bytes, res.restarted_from_zero + 1


def ftp_run(fault_fraction):
    world, link = build_world()
    ftp = PlainFtpTool(world, "dtn-b")
    rate = ftp.estimated_rate_bps("dtn-a")
    fault_at = world.now + PAYLOAD * 8 / rate * fault_fraction
    world.faults.cut_link(link, at=fault_at, duration=30.0)
    t0 = world.now
    res = ftp.fetch("dtn-a", PAYLOAD, use_rest=True)
    return world.now - t0, res.wasted_bytes, 1


def run_claim_relia():
    table = []
    for frac in FAULT_FRACTIONS:
        g = gridftp_run(frac)
        s = scp_run(frac)
        f = ftp_run(frac)
        table.append((frac, g, s, f))
    return table


def test_claim_reliability_restart_markers(benchmark):
    table = run_once(benchmark, run_claim_relia)
    rows = []
    for frac, g, s, f in table:
        rows.append([f"{int(frac * 100)}%",
                     fmt_duration(g[0]), fmt_bytes(g[1]),
                     fmt_duration(s[0]), fmt_bytes(s[1]),
                     fmt_duration(f[0]), fmt_bytes(f[1])])
    report("claim_reliability", render_table(
        f"CLAIM-RELIA (reproduced): {PAYLOAD // GB} GB interrupted mid-flight "
        "(30s outage) — completion time and wasted bytes",
        ["fault at", "GridFTP time", "GridFTP wasted",
         "scp time", "scp wasted", "ftp+REST time", "ftp wasted"],
        rows,
    ))
    for frac, g, s, f in table:
        # GridFTP wastes (essentially) nothing
        assert g[1] < 0.02 * PAYLOAD
        # SCP wastes everything delivered before the fault
        assert s[1] > 0.8 * frac * PAYLOAD
        # and the SCP penalty grows with how late the fault strikes
    late, early = table[-1], table[0]
    assert late[2][0] > early[2][0]  # scp total time worse for later faults
    # GridFTP completion time is essentially flat in fault position
    g_times = [g[0] for _, g, _, _ in table]
    assert max(g_times) / min(g_times) < 1.3
