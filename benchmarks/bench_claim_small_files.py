"""CLAIM-SMALL — pipelining and concurrency for "lots of small files"
(Sections II.A, VII; GridFTP Pipelining, ref [11]; concurrency, ref [12]).

5,000 x 100 KiB files across a 50 ms-RTT path.  Without pipelining the
job is one command round trip per file; pipelining collapses the round
trips, concurrency overlaps the payloads, and the combination wins by an
order of magnitude.
"""

from benchmarks._harness import report, run_once
from repro.gridftp.transfer import TransferOptions
from repro.gridftp.tuning import DatasetShape, autotune
from repro.metrics.report import render_table
from repro.scenarios import conventional_site
from repro.sim.world import World
from repro.util.units import KB, MB, fmt_duration, gbps
from repro.workloads.datasets import lots_of_small_files, materialize

FILE_COUNT = 5000
FILE_SIZE = 100 * KB


def run_claim_small():
    world = World(seed=12)
    net = world.network
    net.add_host("server", nic_bps=gbps(10))
    net.add_host("client", nic_bps=gbps(1))
    net.add_link("server", "client", gbps(1), 0.025)  # 50 ms RTT

    site = conventional_site(world, "Lab", "server")
    site.add_user(world, "alice")
    specs = lots_of_small_files(count=FILE_COUNT, size=FILE_SIZE,
                                directory="/data/small")
    materialize(specs, site.storage)

    base = TransferOptions(tcp_window_bytes=1 * MB)
    path = world.network.path("server", "client")
    tuned = autotune(DatasetShape.from_sizes([s.size for s in specs]), path)
    variants = [
        ("no pipelining, serial", base),
        ("pipelining", base.with_(pipelining=True)),
        ("pipelining + concurrency 4", base.with_(pipelining=True, concurrency=4)),
        ("pipelining + concurrency 8", base.with_(pipelining=True, concurrency=8)),
        (f"auto-tuned (conc={tuned.concurrency})", tuned),
    ]
    timings = []
    for i, (label, options) in enumerate(variants):
        client = site.client_for(world, "alice", "client")
        session = client.connect(site.server)
        client.local_storage.makedirs("/dl", 0)
        paths = [(spec.path, f"/dl/{i}-{j}.dat") for j, spec in enumerate(specs)]
        t0 = world.now
        session.get_many(paths, options)
        timings.append((label, world.now - t0))
        session.quit()
    return timings


def test_claim_small_files_pipelining(benchmark):
    timings = run_once(benchmark, run_claim_small)
    base_time = timings[0][1]
    rows = [[label, fmt_duration(t), f"{base_time / t:.1f}x"]
            for label, t in timings]
    report("claim_small_files", render_table(
        f"CLAIM-SMALL (reproduced): {FILE_COUNT} x {FILE_SIZE // KB} KiB files, "
        "50 ms RTT",
        ["strategy", "elapsed (virtual)", "speedup"],
        rows,
    ))
    by_label = dict(timings)
    t_naive = by_label["no pipelining, serial"]
    t_pipe = by_label["pipelining"]
    t_both = by_label["pipelining + concurrency 8"]
    # pipelining alone kills the per-file round trip: ~order of magnitude
    assert t_naive / t_pipe > 5
    # adding concurrency compounds it
    assert t_naive / t_both > 20
    # the auto-tuner lands within 2x of the best hand configuration
    t_auto = timings[-1][1]
    assert t_auto < 2 * min(t for _, t in timings)
