"""Archival pipeline benchmark: a chaos-soaked multi-site campaign.

Drives the full five-component archival pipeline (picker -> bundler ->
replicator -> verifier -> deleter) over the fleet scheduler while chaos
crashes every component and worker host and a destination site blacks
out repeatedly, and reports:

* wall-clock throughput (bundles/sec and source bytes/sec of simulator
  progress);
* virtual campaign duration and per-bundle archival latency (submit to
  ``completed``, p50/p99 virtual seconds);
* injected-fault evidence: component crashes, worker crashes, lease
  expirations, blackout-blocked transfers;
* catalog outcome counts (must be 100% ``source-deleted``).

Usage::

    PYTHONPATH=src python benchmarks/bench_archival_campaign.py          # full run
    PYTHONPATH=src python benchmarks/bench_archival_campaign.py --quick  # CI smoke
    PYTHONPATH=src python benchmarks/bench_archival_campaign.py --quick \
        --check BENCH_archival_quick.json                                # gate

``BENCH_archival.json`` at the repo root is the committed full-run
baseline and ``BENCH_archival_quick.json`` the quick-mode one (CI gates
quick against quick so scenarios match).  ``--check`` fails on a >30%
bundles/sec wall-clock regression, and — when the baseline scenario
matches — on *any* drift in the deterministic virtual-time outcome
(campaign duration, fault counts, catalog history digest): those are
seeded virtual time, so a change there is a behaviour change, not a
slow machine.  ``BENCH_TOLERANCE`` overrides the wall-clock tolerance.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.archive import ArchivalCampaign, CampaignConfig  # noqa: E402
from repro.util.stats import percentile  # noqa: E402

SCHEMA = "bench_archival_campaign/v1"
DEFAULT_TOLERANCE = 0.30


def run_bench(seed: int, quick: bool, shards: int = 1) -> dict:
    config = CampaignConfig(seed=seed, shards=shards)
    if quick:
        config = config.quick()
    campaign = ArchivalCampaign(config)

    t0 = time.perf_counter()
    stats = campaign.run()
    wall = time.perf_counter() - t0

    catalog = campaign.catalog
    bundles = catalog.bundles
    source_bytes = sum(b.size for b in bundles)
    latencies = [b.completed_at - b.created_at
                 for b in bundles if b.completed_at > 0.0]
    metrics = campaign.world.metrics

    def total(name: str) -> int:
        metric = metrics.get(name)
        return int(metric.total()) if metric is not None else 0

    blocked = len(campaign.world.log.select("archive.replica_blocked"))
    return {
        "schema": SCHEMA,
        "quick": quick,
        "scenario": {
            "seed": seed,
            "requests": config.requests,
            "files_per_request": config.files_per_request,
            "file_bytes": config.file_bytes,
            "dest_sites": config.dest_sites,
            "quorum": config.quorum,
            **({"shards": shards} if shards > 1 else {}),
        },
        "results": {
            "wall_s": round(wall, 4),
            "bundles": len(bundles),
            "bundles_per_s": round(len(bundles) / wall, 2),
            "source_bytes": source_bytes,
            "source_bytes_per_s": round(source_bytes / wall, 1),
            "virtual_duration_s": round(campaign.world.now, 2),
            "bundle_latency_p50_s": round(percentile(latencies, 0.50), 2),
            "bundle_latency_p99_s": round(percentile(latencies, 0.99), 2),
            "counts": stats["counts"],
            "injected_faults": stats["injected_faults"],
            "component_crashes": stats["component_crashes"],
            "worker_crashes": stats["worker_crashes"],
            "lease_expirations": total("archive_lease_expirations_total"),
            "replicas_submitted": total("archive_replicas_submitted_total"),
            "replica_resubmissions": total(
                "archive_replica_resubmissions_total"),
            "checksum_mismatches": total("archive_checksum_mismatches_total"),
            "bytes_replicated": total("archive_bytes_replicated_total"),
            "blackout_blocked_transfers": blocked,
            "history_digest": stats["history_digest"],
        },
        "env": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
    }


def check_regression(current: dict, baseline_path: pathlib.Path) -> int:
    """Exit code 1 on wall-clock regression or virtual-outcome drift.

    bundles/sec is wall-clock (noisy across machines; the loose
    tolerance catches an algorithmic regression, not CI jitter).  The
    virtual outcome — campaign duration, fault counts, catalog history
    digest — is seeded deterministic, so when the scenarios match it is
    compared *exactly*: any drift means the pipeline's behaviour
    changed and the baseline must be consciously re-cut.
    """
    baseline = json.loads(baseline_path.read_text())
    tol = float(os.environ.get("BENCH_TOLERANCE", DEFAULT_TOLERANCE))
    failed = False

    base_rate = baseline["results"]["bundles_per_s"]
    cur_rate = current["results"]["bundles_per_s"]
    floor = base_rate * (1.0 - tol)
    verdict = "OK" if cur_rate >= floor else "REGRESSION"
    failed = failed or cur_rate < floor
    print(
        f"[check] bundles/sec: current={cur_rate:.2f} baseline={base_rate:.2f} "
        f"floor={floor:.2f} (tolerance {tol:.0%}) -> {verdict}"
    )

    if baseline.get("scenario") != current.get("scenario"):
        print("[check] virtual outcome: skipped (baseline scenario differs)")
        return 1 if failed else 0

    for key in ("virtual_duration_s", "injected_faults",
                "lease_expirations", "history_digest"):
        base_v = baseline["results"].get(key)
        cur_v = current["results"].get(key)
        ok = base_v == cur_v
        failed = failed or not ok
        shown = (str(cur_v)[:16], str(base_v)[:16]) \
            if key == "history_digest" else (cur_v, base_v)
        print(f"[check] {key} (virtual, exact): current={shown[0]} "
              f"baseline={shown[1]} -> {'OK' if ok else 'DRIFT'}")
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-smoke size (2 requests x 8 files)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--shards", type=int, default=1,
                        help="run the campaign over N scheduler shards")
    parser.add_argument("--out", type=pathlib.Path, default=None)
    parser.add_argument("--check", type=pathlib.Path, default=None,
                        help="baseline JSON to gate against "
                             "(>30%% wall regression or any virtual drift fails)")
    args = parser.parse_args(argv)

    report = run_bench(args.seed, quick=args.quick, shards=args.shards)
    out = args.out or REPO_ROOT / (
        "BENCH_archival_quick.json" if args.quick else "BENCH_archival.json")
    out.write_text(json.dumps(report, indent=2) + "\n")
    r = report["results"]
    print(
        f"[bench] {r['bundles']} bundles archived in {r['wall_s']}s wall "
        f"({r['bundles_per_s']} bundles/s), virtual {r['virtual_duration_s']}s, "
        f"{r['injected_faults']} faults "
        f"({r['component_crashes']} component / {r['worker_crashes']} worker), "
        f"{r['blackout_blocked_transfers']} blackout-blocked transfers"
    )
    print(f"[bench] counts: {r['counts']}  -> {out}")

    if args.check is not None:
        return check_regression(report, args.check)
    return 0


if __name__ == "__main__":
    sys.exit(main())
