"""CLAIM-ENC — Section II.C: data-channel protection is off by default
"because of cost.  (An order of magnitude slowdown is not unusual on
high-speed links.)"

Measures a 10 GB transfer at each PROT level (Clear / Safe=integrity /
Private=confidentiality) on a 10 Gb/s link and on a 100 Mb/s link: the
slowdown is ~10x on the fast link and negligible on the slow one —
exactly why the default is off.
"""

from benchmarks._harness import report, run_once
from repro.gridftp.dcau import DataChannelSecurity, DCAUMode
from repro.gridftp.transfer import SinkSpec, SourceSpec, TransferEngine, TransferOptions
from repro.metrics.report import render_table
from repro.pki.validation import TrustStore
from repro.sim.world import World
from repro.storage.data import SyntheticData
from repro.storage.posix import PosixStorage
from repro.util.units import GB, MB, fmt_rate, gbps, mbps
from repro.xio.drivers import Protection

PAYLOAD = 10 * GB


def run_transfer(world, src, dst, protection, tag):
    src_fs = PosixStorage(world.clock)
    src_fs.makedirs("/d", 0)
    dst_fs = PosixStorage(world.clock)
    dst_fs.makedirs("/d", 0)
    data = SyntheticData(seed=11, length=PAYLOAD)
    src_fs.write_file(f"/d/{tag}", data)
    none = lambda n: DataChannelSecurity(mode=DCAUMode.NONE, credential=None,
                                         trust=TrustStore(), endpoint_name=n)
    source = SourceSpec(hosts=(src,), data=src_fs.open_read(f"/d/{tag}", 0),
                        security=none("s"))
    sink = SinkSpec(hosts=(dst,), sink=dst_fs.open_write(f"/d/{tag}", 0, PAYLOAD),
                    security=none("d"))
    opts = TransferOptions(parallelism=16, tcp_window_bytes=16 * MB,
                           protection=protection)
    return TransferEngine(world).execute(source, sink, opts)


def run_claim_enc():
    results = {}
    for label, bw in (("10 Gb/s", gbps(10)), ("100 Mb/s", mbps(100))):
        world = World(seed=11)
        net = world.network
        net.add_host("src", nic_bps=gbps(10))
        net.add_host("dst", nic_bps=gbps(10))
        net.add_link("src", "dst", bw, 0.01, loss=0.0)
        per_level = {}
        for protection in (Protection.CLEAR, Protection.SAFE, Protection.PRIVATE):
            res = run_transfer(world, "src", "dst", protection, protection.value)
            per_level[protection] = res
        results[label] = per_level
    return results


def test_claim_encryption_order_of_magnitude(benchmark):
    results = run_once(benchmark, run_claim_enc)
    rows = []
    for link, per_level in results.items():
        clear = per_level[Protection.CLEAR].rate_bps
        for protection, res in per_level.items():
            rows.append([
                link,
                {"C": "clear", "S": "integrity", "P": "private"}[protection.value],
                fmt_rate(res.rate_bps),
                f"{clear / res.rate_bps:.1f}x",
            ])
    report("claim_encryption", render_table(
        f"CLAIM-ENC (reproduced): {PAYLOAD // GB} GB at each data-channel "
        "protection level",
        ["link", "protection", "rate", "slowdown vs clear"],
        rows,
    ))
    fast = results["10 Gb/s"]
    slow = results["100 Mb/s"]
    fast_slowdown = (fast[Protection.CLEAR].rate_bps /
                     fast[Protection.PRIVATE].rate_bps)
    slow_slowdown = (slow[Protection.CLEAR].rate_bps /
                     slow[Protection.PRIVATE].rate_bps)
    # "an order of magnitude slowdown is not unusual on high-speed links"
    assert 8 <= fast_slowdown <= 15
    # ...and invisible on slow links (cipher faster than the wire)
    assert slow_slowdown < 1.1
    # integrity-only sits in between on the fast link
    assert (fast[Protection.CLEAR].rate_bps > fast[Protection.SAFE].rate_bps
            > fast[Protection.PRIVATE].rate_bps)
