"""ABLATION — parallel streams: why GridFTP's headline knob works, and
where it stops working.

Sweeps stream count on a clean LAN-ish path and on a lossy WAN path.
Shape: on the WAN, rate grows ~linearly with streams (each stream gets
its own Mathis loss budget) until the bottleneck saturates; on the LAN
a couple of streams already saturate and more buy nothing — which is
why the auto-tuner scales parallelism with RTT.
"""

from benchmarks._harness import report, run_once
from repro.gridftp.transfer import TransferOptions, estimate_rate_bps
from repro.metrics.report import render_table
from repro.sim.world import World
from repro.util.units import MB, fmt_rate, gbps

STREAMS = (1, 2, 4, 8, 16, 32, 64)


def build(rtt_s, loss):
    world = World(seed=20)
    net = world.network
    net.add_host("src", nic_bps=gbps(10))
    net.add_host("dst", nic_bps=gbps(10))
    net.add_link("src", "dst", gbps(10), rtt_s / 2, loss=loss)
    return world


def run_ablation():
    sweeps = {}
    for label, rtt, loss in (("LAN (1 ms, clean)", 0.001, 0.0),
                             ("WAN (100 ms, loss 1e-5)", 0.1, 1e-5)):
        world = build(rtt, loss)
        rates = []
        for streams in STREAMS:
            opts = TransferOptions(parallelism=streams, tcp_window_bytes=4 * MB)
            rates.append(estimate_rate_bps(world, "src", "dst", opts))
        sweeps[label] = rates
    return sweeps


def test_ablation_parallelism(benchmark):
    sweeps = run_once(benchmark, run_ablation)
    rows = []
    for i, streams in enumerate(STREAMS):
        row = [streams]
        for label, rates in sweeps.items():
            row += [fmt_rate(rates[i]), f"{rates[i] / rates[0]:.1f}x"]
        rows.append(row)
    headers = ["streams"]
    for label in sweeps:
        headers += [label, "scaling"]
    report("ablation_parallelism", render_table(
        "ABLATION: throughput vs parallel stream count (4 MiB windows)",
        headers, rows,
    ))
    lan = sweeps["LAN (1 ms, clean)"]
    wan = sweeps["WAN (100 ms, loss 1e-5)"]
    # LAN saturates immediately: no gain past saturation
    assert lan[-1] <= lan[0] * 1.01 or lan[1] / lan[0] < 2.0
    assert lan[-1] == lan[-2]  # flat tail
    # WAN scales near-linearly early...
    assert wan[2] > 3.5 * wan[0]  # 4 streams ≈ 4x
    # ...and monotonically approaches (without exceeding) the bottleneck
    assert all(b >= a for a, b in zip(wan, wan[1:]))
    assert wan[-1] <= gbps(10)
