"""Wall-clock fleet benchmark: how fast does the *simulator* run?

Every other bench in this directory measures virtual-time outcomes (the
paper's tables).  This one measures real seconds: it drives
:class:`repro.workloads.fleet.FleetTransferScenario` — ≥10k small-file
transfers between one endpoint pair plus a multi-GiB striped transfer,
under a ~2k-entry scheduled-fault plan — and reports transfers/sec,
blocks-planned/sec, and p50/p95 per-``execute()`` wall time.

Usage::

    PYTHONPATH=src python benchmarks/bench_wallclock_fleet.py            # full run
    PYTHONPATH=src python benchmarks/bench_wallclock_fleet.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_wallclock_fleet.py --quick \
        --check BENCH_wallclock.json                                     # regression gate

The JSON it writes (``BENCH_wallclock.json`` at the repo root by
default) is the committed baseline of the benchmark trajectory; see
DESIGN.md "Performance model & wall-clock benchmarks" for the schema.
``--check`` compares the fresh run's small-file transfers/sec against a
baseline file and exits non-zero on a >30% regression (tolerance
overridable via ``BENCH_TOLERANCE``, a fraction).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.workloads.fleet import FleetTransferScenario, FleetWorkloadConfig  # noqa: E402
from repro.util.stats import percentile  # noqa: E402

SCHEMA = "bench_wallclock_fleet/v1"
DEFAULT_TOLERANCE = 0.30


def run_bench(config: FleetWorkloadConfig, quick: bool) -> dict:
    """One full scenario run, timed phase by phase."""
    scenario = FleetTransferScenario(config)
    execute_wall: list[float] = []

    def timed(_i: int, fn):
        t0 = time.perf_counter()
        result = fn()
        execute_wall.append(time.perf_counter() - t0)
        return result

    t0 = time.perf_counter()
    small = scenario.run_small_files(on_each=timed)
    small_wall = time.perf_counter() - t0

    t1 = time.perf_counter()
    striped = scenario.run_striped()
    striped_wall = time.perf_counter() - t1

    total_blocks = small.blocks_planned + striped.blocks_planned
    total_wall = small_wall + striped_wall
    return {
        "schema": SCHEMA,
        "quick": quick,
        "scenario": {
            "seed": config.seed,
            "small_files": config.small_files,
            "small_file_bytes": config.small_file_bytes,
            "striped_bytes": config.striped_bytes,
            "stripes": config.stripes,
            "scheduled_faults": config.scheduled_faults,
            "block_size": config.block_size,
        },
        "results": {
            "small_files": {
                "wall_s": round(small_wall, 4),
                "transfers_per_s": round(small.transfers / small_wall, 2),
                "p50_execute_s": round(percentile(execute_wall, 0.50), 6),
                "p95_execute_s": round(percentile(execute_wall, 0.95), 6),
                "bytes_moved": small.bytes_moved,
            },
            "striped": {
                "wall_s": round(striped_wall, 4),
                "bytes_moved": striped.bytes_moved,
                "blocks_planned": striped.blocks_planned,
            },
            "total_wall_s": round(total_wall, 4),
            "blocks_planned_per_s": round(total_blocks / total_wall, 2),
        },
        "env": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
    }


def check_regression(current: dict, baseline_path: pathlib.Path) -> int:
    """Exit code 1 if transfers/sec regressed beyond tolerance."""
    baseline = json.loads(baseline_path.read_text())
    tol = float(os.environ.get("BENCH_TOLERANCE", DEFAULT_TOLERANCE))
    base_rate = baseline["results"]["small_files"]["transfers_per_s"]
    cur_rate = current["results"]["small_files"]["transfers_per_s"]
    floor = base_rate * (1.0 - tol)
    verdict = "OK" if cur_rate >= floor else "REGRESSION"
    print(
        f"[check] transfers/sec: current={cur_rate:.1f} baseline={base_rate:.1f} "
        f"floor={floor:.1f} (tolerance {tol:.0%}) -> {verdict}"
    )
    return 0 if cur_rate >= floor else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-smoke size (1k files, 512 MiB striped)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--files", type=int, default=None,
                        help="override the small-file count")
    parser.add_argument("--out", type=pathlib.Path,
                        default=REPO_ROOT / "BENCH_wallclock.json")
    parser.add_argument("--check", type=pathlib.Path, default=None,
                        help="baseline JSON to gate against (>30%% regression fails)")
    args = parser.parse_args(argv)

    config = FleetWorkloadConfig(seed=args.seed)
    if args.quick:
        config = config.quick()
    if args.files is not None:
        from dataclasses import replace

        config = replace(config, small_files=args.files)

    report = run_bench(config, quick=args.quick)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    r = report["results"]
    print(
        f"small files: {config.small_files} in {r['small_files']['wall_s']}s "
        f"({r['small_files']['transfers_per_s']}/s, "
        f"p50 {r['small_files']['p50_execute_s'] * 1e3:.2f}ms, "
        f"p95 {r['small_files']['p95_execute_s'] * 1e3:.2f}ms)"
    )
    print(
        f"striped: {r['striped']['bytes_moved']} bytes, "
        f"{r['striped']['blocks_planned']} blocks in {r['striped']['wall_s']}s"
    )
    print(f"blocks planned/sec: {r['blocks_planned_per_s']}  [saved to {args.out}]")

    if args.check is not None:
        return check_regression(report, args.check)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
