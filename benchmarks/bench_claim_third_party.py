"""CLAIM-3RDPARTY — Section VII: "SCP routes data through the client for
transfers between two remote hosts; but often, the two remote hosts are
connected by a high-speed link whereas the client and remote hosts are
connected by low-bandwidth links."

50 GB between two sites on a 10 Gb/s research link, driven from a laptop
on a 20 Mb/s access link: GridFTP third-party flows site-to-site; SCP
drags every byte through the laptop, twice.
"""

from benchmarks._harness import report, run_once
from repro.baselines.scp import ScpTool
from repro.gridftp.third_party import third_party_transfer
from repro.gridftp.transfer import TransferOptions
from repro.metrics.report import render_table
from repro.myproxy.client import myproxy_logon
from repro.gridftp.client import GridFTPClient
from repro.pki.validation import TrustStore
from repro.scenarios import gcmu_site
from repro.sim.world import World
from repro.storage.data import SyntheticData
from repro.util.units import GB, MB, fmt_duration, fmt_rate, gbps, mbps

PAYLOAD = 50 * GB


def run_claim_3rd():
    world = World(seed=14)
    net = world.network
    net.add_host("dtn-a", nic_bps=gbps(10))
    net.add_host("dtn-b", nic_bps=gbps(10))
    net.add_host("laptop", nic_bps=gbps(1))
    net.add_link("dtn-a", "dtn-b", gbps(10), 0.03, loss=1e-6)
    net.add_link("laptop", "dtn-a", mbps(20), 0.015)
    net.add_link("laptop", "dtn-b", mbps(20), 0.02)

    ep_a = gcmu_site(world, "dtn-a", "alcf", {"alice": "pw"})
    ep_b = gcmu_site(world, "dtn-b", "nersc", {"alice": "pw"})
    uid = ep_a.accounts.get("alice").uid
    ep_a.storage.write_file("/home/alice/run.dat",
                            SyntheticData(seed=14, length=PAYLOAD), uid=uid)

    # GridFTP third-party from the laptop, with DCSC across domains
    trust = TrustStore()
    cred_a = myproxy_logon(world, "laptop", ep_a.myproxy, "alice", "pw", trust=trust)
    cred_b = myproxy_logon(world, "laptop", ep_b.myproxy, "alice", "pw", trust=trust)
    sa = GridFTPClient(world, "laptop", credential=cred_a, trust=trust).connect(ep_a.server)
    sb = GridFTPClient(world, "laptop", credential=cred_b, trust=trust).connect(ep_b.server)
    t0 = world.now
    gridftp_res = third_party_transfer(
        sa, "/home/alice/run.dat", sb, "/home/alice/run.dat",
        options=TransferOptions(parallelism=16, tcp_window_bytes=16 * MB),
        use_dcsc=cred_a,
    )
    gridftp_elapsed = world.now - t0

    # SCP from the same laptop: relays through the 20 Mb/s access links
    scp = ScpTool(world, "laptop")
    t0 = world.now
    scp_res = scp.copy("dtn-a", "dtn-b", PAYLOAD)
    scp_elapsed = world.now - t0
    return gridftp_res, gridftp_elapsed, scp_res, scp_elapsed


def test_claim_third_party_direct_vs_relay(benchmark):
    gridftp_res, gridftp_elapsed, scp_res, scp_elapsed = run_once(
        benchmark, run_claim_3rd)
    rows = [
        ["GridFTP third-party (+DCSC)", "dtn-a -> dtn-b directly",
         fmt_rate(gridftp_res.rate_bps), fmt_duration(gridftp_elapsed)],
        ["scp from the laptop", "dtn-a -> laptop -> dtn-b",
         fmt_rate(scp_res.rate_bps), fmt_duration(scp_elapsed)],
    ]
    speedup = scp_elapsed / gridftp_elapsed
    report("claim_third_party", render_table(
        f"CLAIM-3RDPARTY (reproduced): {PAYLOAD // GB} GB site-to-site, "
        f"client on a 20 Mb/s access link — GridFTP {speedup:.0f}x faster",
        ["tool", "data path", "effective rate", "elapsed (virtual)"],
        rows,
    ))
    assert gridftp_res.verified
    # SCP is capped by the access link (and crosses it twice)
    assert scp_res.rate_bps < mbps(15)
    # the direct path wins by far more than an order of magnitude
    assert speedup > 50
