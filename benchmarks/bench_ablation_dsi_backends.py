"""ABLATION — DSI backends: POSIX vs HPSS through the same server.

Section II.A's modularity claim made concrete: the identical GridFTP
server serves a POSIX filesystem and an HPSS archive by swapping the
DSI.  The archive's behaviour shows through end-to-end: the first
retrieve of a cold file pays the tape mount + drain, the second is
disk-cached and matches POSIX.
"""

from benchmarks._harness import report, run_once
from repro.gridftp.transfer import TransferOptions
from repro.metrics.report import render_table
from repro.scenarios import conventional_site
from repro.sim.world import World
from repro.storage.data import SyntheticData
from repro.storage.hpss import HpssStorage
from repro.util.units import GB, MB, fmt_duration, gbps

PAYLOAD = 2 * GB
OPTS = TransferOptions(parallelism=8, tcp_window_bytes=16 * MB)


def run_ablation():
    world = World(seed=24)
    net = world.network
    net.add_host("posix-dtn", nic_bps=gbps(10))
    net.add_host("archive-dtn", nic_bps=gbps(10))
    net.add_host("laptop", nic_bps=gbps(10))
    net.add_router("lan")
    for h in ("posix-dtn", "archive-dtn", "laptop"):
        net.add_link(h, "lan", gbps(10), 0.001)

    posix_site = conventional_site(world, "PosixSite", "posix-dtn")
    posix_site.add_user(world, "alice")
    uid = posix_site.accounts.get("alice").uid
    data = SyntheticData(seed=24, length=PAYLOAD)
    posix_site.storage.write_file("/home/alice/f.dat", data, uid=uid)

    archive_site = conventional_site(world, "ArchiveSite", "archive-dtn")
    archive_site.add_user(world, "alice")
    hpss = HpssStorage(world.clock, mount_latency_s=45.0)
    hpss.makedirs("/home/alice", 0)
    hpss.inner.chown("/home/alice", archive_site.accounts.get("alice").uid)
    hpss.write_file("/home/alice/f.dat", data,
                    uid=archive_site.accounts.get("alice").uid)
    archive_site.server.dsi = hpss  # same server class, swapped DSI

    timings = {}
    # POSIX retrieve
    client = posix_site.client_for(world, "alice", "laptop")
    session = client.connect(posix_site.server)
    t0 = world.now
    session.get("/home/alice/f.dat", "/tmp/p.dat", OPTS)
    timings["posix"] = world.now - t0

    # HPSS cold retrieve (tape stage) then warm retrieve (disk cache)
    client2 = archive_site.client_for(world, "alice", "laptop")
    session2 = client2.connect(archive_site.server)
    t0 = world.now
    session2.get("/home/alice/f.dat", "/tmp/h1.dat", OPTS)
    timings["hpss cold"] = world.now - t0
    t0 = world.now
    session2.get("/home/alice/f.dat", "/tmp/h2.dat", OPTS)
    timings["hpss warm"] = world.now - t0
    return timings, hpss.stage_count


def test_ablation_dsi_backends(benchmark):
    timings, stage_count = run_once(benchmark, run_ablation)
    rows = [
        ["POSIX", fmt_duration(timings["posix"]), "-"],
        ["HPSS (cold, tape stage)", fmt_duration(timings["hpss cold"]),
         f"{timings['hpss cold'] / timings['posix']:.1f}x"],
        ["HPSS (warm, disk cache)", fmt_duration(timings["hpss warm"]),
         f"{timings['hpss warm'] / timings['posix']:.1f}x"],
    ]
    report("ablation_dsi_backends", render_table(
        f"ABLATION: the same GridFTP server over two DSI backends "
        f"({PAYLOAD // GB} GB retrieve)",
        ["backend", "retrieve time", "vs POSIX"],
        rows,
    ))
    assert stage_count == 1  # exactly one tape mount across both retrieves
    assert timings["hpss cold"] > timings["posix"] + 40.0  # the mount shows
    # warm ≈ posix (within protocol noise)
    assert abs(timings["hpss warm"] - timings["posix"]) < 0.5
