"""CLAIM-LITE — Section III.B: GridFTP-Lite's three limitations, each
demonstrated as an actual behaviour, next to GCMU which has none of them.

1. the data channel has no security;
2. SSH cannot delegate, so hand-off to Globus Online fails;
3. the striped server's internal PI->DTP channel is unsecured.
"""

from benchmarks._harness import report, run_once
from repro.auth.accounts import AccountDatabase
from repro.baselines.gridftp_lite import GridFTPLite
from repro.errors import DCAUError, DelegationError
from repro.gsi.delegation import delegate_credential
from repro.gridftp.transfer import TransferOptions
from repro.metrics.report import render_table
from repro.myproxy.client import myproxy_logon
from repro.pki.validation import TrustStore
from repro.scenarios import gcmu_site
from repro.sim.world import World
from repro.storage.data import LiteralData
from repro.storage.posix import PosixStorage
from repro.util.units import MB, gbps
from repro.xio.drivers import Protection


def run_claim_lite():
    world = World(seed=15)
    net = world.network
    for h in ("lite-host", "lite-dtp", "gcmu-host", "laptop"):
        net.add_host(h, nic_bps=gbps(10))
    net.add_router("lan")
    for h in ("lite-host", "lite-dtp", "gcmu-host", "laptop"):
        net.add_link(h, "lan", gbps(1), 0.005)

    # -- GridFTP-Lite deployment -------------------------------------------
    accounts = AccountDatabase()
    accounts.add_user("alice")
    fs = PosixStorage(world.clock)
    fs.makedirs("/home/alice", 0)
    fs.chown("/home/alice", accounts.get("alice").uid)
    fs.write_file("/home/alice/d.bin", LiteralData(b"x" * MB),
                  uid=accounts.get("alice").uid)
    lite = GridFTPLite(world, "lite-host", accounts, fs,
                       stripe_hosts=("lite-host", "lite-dtp"))
    lite.add_ssh_user("alice", "ssh-pw")
    session = lite.ssh_login("laptop", "alice", "ssh-pw")

    rows = []

    # limitation 1: data channel security
    local = PosixStorage(world.clock)
    local.makedirs("/tmp", 0)
    try:
        session.get("/home/alice/d.bin", local, "/tmp/d.bin",
                    TransferOptions(protection=Protection.PRIVATE))
        lite_protected = "accepted (?!)"
    except DCAUError:
        lite_protected = "REFUSED: no data channel security"
    rows.append(["1. protect the data channel", lite_protected, "works (PROT P)"])

    # limitation 2: delegation / Globus Online hand-off
    try:
        session.delegate()
        lite_delegation = "delegated (?!)"
    except DelegationError:
        lite_delegation = "FAILED: SSH cannot delegate"
    rows.append(["2. hand off to Globus Online", lite_delegation,
                 "works (proxy delegation)"])

    # limitation 3: striped internal channel
    lite.internal_message("lite-dtp", "serve stripe 1")
    lite_internal = world.log.select("gridftp.striped.internal")[-1].fields["secure"]
    rows.append(["3. secure PI->DTP internal channel",
                 "insecure" if not lite_internal else "secure (?!)",
                 "secure"])

    # -- GCMU does all three ---------------------------------------------------
    ep = gcmu_site(world, "gcmu-host", "site", {"alice": "pw"})
    uid = ep.accounts.get("alice").uid
    ep.storage.write_file("/home/alice/d.bin", LiteralData(b"y" * MB), uid=uid)
    trust = TrustStore()
    cred = myproxy_logon(world, "laptop", ep.myproxy, "alice", "pw", trust=trust)
    from repro.gridftp.client import GridFTPClient

    local2 = PosixStorage(world.clock)
    local2.makedirs("/tmp", 0)
    client = GridFTPClient(world, "laptop", credential=cred, trust=trust,
                           local_storage=local2)
    gcmu_session = client.connect(ep.server)
    res = gcmu_session.get("/home/alice/d.bin", "/tmp/d.bin",
                           TransferOptions(protection=Protection.PRIVATE))
    delegated = delegate_credential(cred, world.clock, world.rng.python("d"))
    return rows, res.verified, delegated.identity == cred.identity


def test_claim_gridftp_lite_limitations(benchmark):
    rows, gcmu_protected_ok, gcmu_delegates = run_once(benchmark, run_claim_lite)
    report("claim_gridftp_lite", render_table(
        "CLAIM-LITE (reproduced): GridFTP-Lite's Section III.B limitations "
        "vs GCMU",
        ["capability", "GridFTP-Lite", "GCMU"],
        rows,
    ))
    assert rows[0][1].startswith("REFUSED")
    assert rows[1][1].startswith("FAILED")
    assert rows[2][1] == "insecure"
    assert gcmu_protected_ok and gcmu_delegates
