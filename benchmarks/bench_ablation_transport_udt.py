"""ABLATION — XIO transport choice: TCP vs UDT across loss rates.

Section II.A: the extensible I/O interface "allows GridFTP to target
high-performance wide-area communication protocols such as UDT".  This
sweep shows when that matters: loss-driven TCP collapses as random loss
grows (even with 16 streams), while rate-based UDT holds near line rate
until loss becomes severe — the crossover justifies shipping the driver.
"""

from benchmarks._harness import report, run_once
from repro.gridftp.transfer import TransferOptions, estimate_rate_bps
from repro.metrics.report import render_table
from repro.sim.world import World
from repro.util.units import MB, fmt_rate, gbps

LOSSES = (0.0, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2)


def run_ablation():
    rows = []
    for loss in LOSSES:
        world = World(seed=22)
        net = world.network
        net.add_host("src", nic_bps=gbps(10))
        net.add_host("dst", nic_bps=gbps(10))
        net.add_link("src", "dst", gbps(10), 0.05, loss=loss)
        tcp1 = estimate_rate_bps(world, "src", "dst",
                                 TransferOptions(parallelism=1,
                                                 tcp_window_bytes=64 * MB))
        tcp16 = estimate_rate_bps(world, "src", "dst",
                                  TransferOptions(parallelism=16,
                                                  tcp_window_bytes=64 * MB))
        udt = estimate_rate_bps(world, "src", "dst",
                                TransferOptions(transport="udt"))
        rows.append((loss, tcp1, tcp16, udt))
    return rows


def test_ablation_transport_udt(benchmark):
    rows = run_once(benchmark, run_ablation)
    table_rows = [
        [f"{loss:g}", fmt_rate(tcp1), fmt_rate(tcp16), fmt_rate(udt),
         "udt" if udt > tcp16 else "tcp x16"]
        for loss, tcp1, tcp16, udt in rows
    ]
    report("ablation_transport_udt", render_table(
        "ABLATION: transport driver vs loss rate (10 Gb/s, 100 ms RTT)",
        ["loss", "tcp x1", "tcp x16", "udt", "winner"],
        table_rows,
    ))
    by_loss = {loss: (t1, t16, udt) for loss, t1, t16, udt in rows}
    # clean path: TCP x16 fills the pipe, UDT's fixed efficiency loses slightly
    assert by_loss[0.0][1] >= by_loss[0.0][2]
    # at 1e-4 and beyond, UDT wins decisively even against 16 streams
    assert by_loss[1e-4][2] > 2 * by_loss[1e-4][1]
    assert by_loss[1e-3][2] > 5 * by_loss[1e-3][1]
    # TCP degrades monotonically with loss
    tcp16_rates = [t16 for _, _, t16, _ in rows]
    assert all(b <= a for a, b in zip(tcp16_rates, tcp16_rates[1:]))
