"""FIG7 — Figure 7: the OAuth variant of endpoint activation.

Side-by-side credential-exposure accounting: with plain activation the
user's site password transits Globus Online; with a site OAuth server it
is entered only on the site's own page.  Both paths must end in a usable
short-term certificate (proved by running a transfer after each).
"""

from benchmarks._harness import report, run_once
from repro.globusonline.oauth import OAuthServer
from repro.globusonline.service import GlobusOnline
from repro.globusonline.transfer import JobStatus
from repro.metrics.report import render_table
from repro.scenarios import gcmu_site
from repro.sim.world import World
from repro.storage.data import LiteralData
from repro.util.units import MB, gbps


def run_fig7():
    world = World(seed=7)
    net = world.network
    for h in ("dtn-a", "dtn-b", "saas"):
        net.add_host(h, nic_bps=gbps(10))
    net.add_link("dtn-a", "dtn-b", gbps(10), 0.03, loss=1e-6)
    net.add_link("saas", "dtn-a", gbps(1), 0.02)
    net.add_link("saas", "dtn-b", gbps(1), 0.02)

    go = GlobusOnline(world, "saas")
    ep_a = gcmu_site(world, "dtn-a", "alcf", {"alice": "pwA"},
                     register_with=go, endpoint_name="alcf#dtn")
    ep_b = gcmu_site(world, "dtn-b", "nersc", {"asmith": "pwB"},
                     register_with=go, endpoint_name="nersc#dtn")
    uid = ep_a.accounts.get("alice").uid
    ep_a.storage.write_file("/home/alice/f.dat", LiteralData(b"d" * MB), uid=uid)
    user = go.register_user("alice@globusid")
    go.activate(user, "nersc#dtn", "asmith", "pwB")  # dest, password path

    results = []

    # -- path 1: password activation (Figure 6 style) -----------------------
    world.log.clear()
    go.activate(user, "alcf#dtn", "alice", "pwA")
    parties_pw = sorted({e.fields["party"]
                         for e in world.log.select("credential.exposure")
                         if e.fields.get("username") == "alice"})
    job1 = go.submit_transfer(user, "alcf#dtn", "/home/alice/f.dat",
                              "nersc#dtn", "/home/asmith/f1.dat")
    results.append(("password (web form on Globus Online)", parties_pw,
                    job1.status is JobStatus.SUCCEEDED))

    # -- path 2: OAuth activation (Figure 7) ------------------------------------
    oauth = OAuthServer(world, "dtn-a", ep_a.myproxy, port=8443).start()
    go.attach_oauth("alcf#dtn", oauth)
    world.log.clear()
    go.activate_oauth(user, "alcf#dtn", "alice", "pwA")
    parties_oauth = sorted({e.fields["party"]
                            for e in world.log.select("credential.exposure")
                            if e.fields.get("username") == "alice"})
    job2 = go.submit_transfer(user, "alcf#dtn", "/home/alice/f.dat",
                              "nersc#dtn", "/home/asmith/f2.dat")
    results.append(("OAuth (redirect to the site's own page)", parties_oauth,
                    job2.status is JobStatus.SUCCEEDED))
    return results


def test_fig7_oauth_keeps_password_at_site(benchmark):
    results = run_once(benchmark, run_fig7)
    rows = [[label, ", ".join(parties), "yes" if ok else "NO"]
            for label, parties, ok in results]
    report("fig7_oauth", render_table(
        "Figure 7 (reproduced): who observes the user's site password?",
        ["activation method", "parties that saw the password", "transfer works"],
        rows,
    ))
    password_parties = results[0][1]
    oauth_parties = results[1][1]
    assert "globusonline" in password_parties
    assert oauth_parties == ["site:alcf"]  # site only — the Figure 7 win
    assert all(ok for *_, ok in results)
