"""FIG5 — Figure 5: solving the DCAU problem with DCSC.

Re-runs the failing cross-domain pairs of Figure 4 with the Section V
strategies:

* ``DCSC P <credential A>`` to the (DCSC-capable) receiving endpoint;
* the legacy mix: one endpoint knows nothing about DCSC, the blob goes
  to the one that does;
* the higher-security variant: both endpoints support DCSC and receive a
  random self-signed context.
"""

from benchmarks._harness import report, run_once
from repro.gridftp.client import GridFTPClient
from repro.gridftp.third_party import install_dcsc_contexts, third_party_transfer
from repro.metrics.report import render_table
from repro.myproxy.client import myproxy_logon
from repro.pki.ca import self_signed_credential
from repro.pki.dn import DistinguishedName as DN
from repro.pki.validation import TrustStore
from repro.scenarios import gcmu_site
from repro.sim.world import World
from repro.storage.data import LiteralData
from repro.util.units import MB, gbps, mbps


def run_fig5():
    world = World(seed=5)
    net = world.network
    net.add_router("wan")
    for h in ("dtn-a", "dtn-b", "dtn-legacy"):
        net.add_host(h, nic_bps=gbps(10))
        net.add_link(h, "wan", gbps(10), 0.02, loss=1e-6)
    net.add_host("laptop", nic_bps=gbps(1))
    net.add_link("laptop", "wan", mbps(50), 0.02)

    ep_a = gcmu_site(world, "dtn-a", "alcf", {"alice": "pw"})
    ep_b = gcmu_site(world, "dtn-b", "nersc", {"alice": "pw"})
    ep_legacy = gcmu_site(world, "dtn-legacy", "legacy-lab", {"alice": "pw"},
                          dcsc_enabled=False)

    trust = TrustStore()
    creds = {}
    for name, ep in (("alcf", ep_a), ("nersc", ep_b), ("legacy-lab", ep_legacy)):
        creds[name] = myproxy_logon(world, "laptop", ep.myproxy, "alice", "pw",
                                    trust=trust)
        uid = ep.accounts.get("alice").uid
        ep.storage.write_file("/home/alice/f.bin", LiteralData(b"z" * MB), uid=uid)

    def sessions(src_ep, src_cred, dst_ep, dst_cred):
        sa = GridFTPClient(world, "laptop", credential=src_cred,
                           trust=trust).connect(src_ep.server)
        sb = GridFTPClient(world, "laptop", credential=dst_cred,
                           trust=trust).connect(dst_ep.server)
        return sa, sb

    outcomes = []

    # 1. blob of credential A -> DCSC-capable receiver B
    sa, sb = sessions(ep_a, creds["alcf"], ep_b, creds["nersc"])
    res = third_party_transfer(sa, "/home/alice/f.bin", sb, "/home/alice/c1.bin",
                               use_dcsc=creds["alcf"])
    outcomes.append(("alcf -> nersc", "DCSC P (cred A) to receiver",
                     "OK" if res.verified else "corrupt", res.nbytes))

    # 2. legacy receiver: blob (cred of the legacy site) goes to the sender
    sa, sl = sessions(ep_a, creds["alcf"], ep_legacy, creds["legacy-lab"])
    accepted = install_dcsc_contexts(sa, sl, creds["legacy-lab"])
    res2 = third_party_transfer(sa, "/home/alice/f.bin", sl, "/home/alice/c2.bin",
                                use_dcsc=creds["legacy-lab"])
    outcomes.append(("alcf -> legacy-lab",
                     f"legacy receiver; blob accepted by {accepted[0]}",
                     "OK" if res2.verified else "corrupt", res2.nbytes))

    # 3. both DCSC-capable: random self-signed context to both
    ctx = self_signed_credential(DN.parse("/CN=random-ctx"), world.clock,
                                 world.rng.python("ss"))
    sa, sb = sessions(ep_a, creds["alcf"], ep_b, creds["nersc"])
    both = install_dcsc_contexts(sa, sb, ctx, both=True)
    res3 = third_party_transfer(sa, "/home/alice/f.bin", sb, "/home/alice/c3.bin")
    outcomes.append(("alcf -> nersc", f"self-signed context to both ({len(both)} eps)",
                     "OK" if res3.verified else "corrupt", res3.nbytes))
    return outcomes


def test_fig5_dcsc_solutions(benchmark):
    outcomes = run_once(benchmark, run_fig5)
    report("fig5_dcsc", render_table(
        "Figure 5 (reproduced): cross-domain third-party transfers WITH DCSC",
        ["pair", "strategy", "outcome", "bytes"],
        [list(o) for o in outcomes],
    ))
    assert all(o[2] == "OK" for o in outcomes)
    assert len(outcomes) == 3
