"""CLAIM-SETUP — Section III vs Section IV: conventional GridFTP install
is a multi-day, expert, per-user ordeal; GCMU is four commands and a
password ("instant").

Two views:

1. the *step model*: total actions, expert actions and wall-clock
   minutes for admin + N users, per method (conventional / GCMU /
   GridFTP-Lite);
2. the *lived experience*: actual virtual time-to-first-verified-
   transfer for GCMU, measured by executing the whole flow.
"""

from benchmarks._harness import report, run_once
from repro.core.installer import (
    conventional_admin_steps,
    conventional_user_steps,
    expert_step_count,
    gcmu_admin_steps,
    gcmu_user_steps,
    gridftp_lite_admin_steps,
    gridftp_lite_user_steps,
    step_count,
    total_minutes,
)
from repro.core.client_tools import install_client
from repro.metrics.report import render_table
from repro.scenarios import gcmu_site
from repro.sim.world import World
from repro.storage.data import LiteralData
from repro.util.units import MINUTE, fmt_duration, gbps

USER_COUNTS = (1, 10, 100)

METHODS = {
    "conventional": (conventional_admin_steps, conventional_user_steps),
    "GCMU": (gcmu_admin_steps, gcmu_user_steps),
    "GridFTP-Lite": (gridftp_lite_admin_steps, gridftp_lite_user_steps),
}


def measured_gcmu_time_to_first_transfer() -> float:
    """Run the real flow and clock it."""
    world = World(seed=13)
    net = world.network
    net.add_host("dtn", nic_bps=gbps(10))
    net.add_host("laptop", nic_bps=gbps(1))
    net.add_link("dtn", "laptop", gbps(1), 0.01)
    t0 = world.now
    ep = gcmu_site(world, "dtn", "site", {"alice": "pw"},
                   charge_install_time=True)
    uid = ep.accounts.get("alice").uid
    ep.storage.write_file("/home/alice/f.dat", LiteralData(b"x" * 4096), uid=uid)
    tools = install_client(world, "laptop", username="alice")
    tools.myproxy_logon(ep, "alice", "pw")
    tools.local_storage.makedirs("/dl", 0)
    res = tools.globus_url_copy("gsiftp://dtn:2811/home/alice/f.dat",
                                "file:///dl/f.dat")
    assert res.verified
    return world.now - t0


def run_claim_setup():
    model_rows = []
    totals = {}
    for users in USER_COUNTS:
        for method, (admin_fn, user_fn) in METHODS.items():
            admin, user_steps = admin_fn(), user_fn()
            minutes = total_minutes(admin, users) + total_minutes(user_steps, users)
            steps = step_count(admin, users) + step_count(user_steps, users)
            experts = expert_step_count(admin, users) + expert_step_count(
                user_steps, users)
            totals[(method, users)] = minutes
            model_rows.append([users, method, steps, experts,
                               fmt_duration(minutes * MINUTE)])
    measured = measured_gcmu_time_to_first_transfer()
    return model_rows, totals, measured


def test_claim_setup_instant_vs_conventional(benchmark):
    model_rows, totals, measured = run_once(benchmark, run_claim_setup)
    txt = render_table(
        "CLAIM-SETUP (reproduced): deployment effort by method "
        "(admin + all users)",
        ["site users", "method", "total steps", "expert steps", "wall-clock"],
        model_rows,
    )
    txt += ("\n\nMeasured GCMU time-to-first-verified-transfer "
            f"(install -> logon -> globus-url-copy): {fmt_duration(measured)}")
    report("claim_setup", txt)

    for users in USER_COUNTS:
        conv = totals[("conventional", users)]
        gcmu = totals[("GCMU", users)]
        # "instant": 2+ orders of magnitude less wall-clock at any scale
        assert conv / gcmu > 100
    # GCMU requires zero expert steps; conventional requires many
    assert all(row[3] == 0 for row in model_rows if row[1] == "GCMU")
    # the measured end-to-end flow fits inside 20 minutes
    assert measured < 20 * MINUTE
