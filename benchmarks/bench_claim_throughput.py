"""CLAIM-THRU — "multiple orders of magnitude higher throughput than ...
SCP" (Sections I, VII).

Sweeps a 1 GB single-file transfer across RTTs on a 10 Gb/s path with
realistic residual loss, comparing GridFTP (tuned windows + parallel
streams) against SCP, plain FTP, rsync and HTTP.  The paper's shape:
single-stream tools are window/cipher bound and fall off a cliff as RTT
grows; GridFTP holds multi-Gb/s, and the gap reaches 2-3 orders of
magnitude on continental paths.
"""

from benchmarks._harness import report, run_once
from repro.baselines.ftp_plain import PlainFtpTool
from repro.baselines.http import HttpTool
from repro.baselines.rsync import RsyncTool
from repro.baselines.scp import ScpTool
from repro.gridftp.transfer import TransferOptions, estimate_rate_bps
from repro.metrics.report import render_table
from repro.sim.world import World
from repro.util.units import GB, MB, fmt_rate, gbps

RTTS_MS = (1, 10, 100)
PAYLOAD = 1 * GB
LOSS = 1e-5


def build_world(rtt_ms: float) -> World:
    world = World(seed=10)
    net = world.network
    net.add_host("src", nic_bps=gbps(10))
    net.add_host("dst", nic_bps=gbps(10))
    net.add_link("src", "dst", gbps(10), rtt_ms / 2000.0, loss=LOSS)
    return world


def run_claim_thru():
    table = []
    for rtt_ms in RTTS_MS:
        world = build_world(rtt_ms)
        gridftp_rate = estimate_rate_bps(
            world, "src", "dst",
            TransferOptions(parallelism=16, tcp_window_bytes=16 * MB),
        )
        scp = ScpTool(world, "src")
        scp_res = scp.copy("src", "dst", PAYLOAD)
        ftp = PlainFtpTool(world, "dst")
        ftp_res = ftp.fetch("src", PAYLOAD)
        rsync = RsyncTool(world, "src")
        rsync_res = rsync.sync("src", "dst", PAYLOAD)
        http = HttpTool(world, "dst")
        http_res = http.download("src", PAYLOAD)
        table.append({
            "rtt_ms": rtt_ms,
            "gridftp": gridftp_rate,
            "scp": scp_res.rate_bps,
            "ftp": ftp_res.rate_bps,
            "rsync": rsync_res.rate_bps,
            "http": http_res.rate_bps,
        })
    return table


def test_claim_throughput_orders_of_magnitude(benchmark):
    table = run_once(benchmark, run_claim_thru)
    rows = []
    for row in table:
        best_baseline = max(row["scp"], row["ftp"], row["rsync"], row["http"])
        rows.append([
            row["rtt_ms"],
            fmt_rate(row["gridftp"]),
            fmt_rate(row["scp"]),
            fmt_rate(row["ftp"]),
            fmt_rate(row["rsync"]),
            fmt_rate(row["http"]),
            f"{row['gridftp'] / row['scp']:.0f}x",
            f"{row['gridftp'] / best_baseline:.0f}x",
        ])
    report("claim_throughput", render_table(
        f"CLAIM-THRU (reproduced): {PAYLOAD // GB} GB on a 10 Gb/s path, "
        f"loss {LOSS:g} — GridFTP = 16 tuned parallel streams",
        ["RTT (ms)", "GridFTP", "scp", "ftp", "rsync", "http",
         "vs scp", "vs best baseline"],
        rows,
    ))
    # shape: >= 2 orders of magnitude vs SCP on the 100 ms path,
    # and GridFTP wins at every RTT.
    wan = table[-1]
    assert wan["gridftp"] / wan["scp"] >= 100
    for row in table:
        for tool in ("scp", "ftp", "rsync", "http"):
            assert row["gridftp"] > row[tool]
    # single-stream tools degrade with RTT; GridFTP holds up far better
    scp_degradation = table[0]["scp"] / table[-1]["scp"]
    gridftp_degradation = table[0]["gridftp"] / table[-1]["gridftp"]
    assert scp_degradation > 10
    assert gridftp_degradation < scp_degradation / 3
