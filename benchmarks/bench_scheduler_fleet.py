"""Fleet scheduler benchmark: a multi-user job storm through Globus Online.

Drives >= 5k transfer jobs from >= 50 contending users through the fleet
scheduler — fair-share queue, lease-based workers, admission control,
small-file coalescing — over the chaos fault backdrop (host crashes on
the worker fleet), and reports:

* wall-clock throughput (jobs/sec of simulator progress);
* virtual-time queue waits (p50/p99 seconds between submit and claim);
* Jain's fairness index over per-user delivered bytes;
* crash/requeue/batch counts as campaign evidence.

Usage::

    PYTHONPATH=src python benchmarks/bench_scheduler_fleet.py           # full run
    PYTHONPATH=src python benchmarks/bench_scheduler_fleet.py --quick   # CI smoke
    PYTHONPATH=src python benchmarks/bench_scheduler_fleet.py --quick \
        --check BENCH_scheduler.json                                    # regression gate
    PYTHONPATH=src python benchmarks/bench_scheduler_fleet.py --quick \
        --overhead-check                                  # observability tax gate

``BENCH_scheduler.json`` at the repo root is the committed full-run
baseline and ``BENCH_scheduler_quick.json`` the quick-mode one (CI
checks quick against quick so scenarios match).  ``--check`` fails on a
>30% jobs/sec regression, and — when the baseline scenario matches —
on a >30% ``queue_wait_p99_s`` increase; that metric is deterministic
virtual time, so any drift is a behaviour change (``BENCH_TOLERANCE``
overrides the tolerance, a fraction).

``--observability`` runs the same storm with the flight recorder and
SLO engine attached (``World.enable_observability``).  ``--overhead-check``
runs the scenario both ways, best-of-2 per mode, and fails if the
instrumented run's jobs/sec falls more than ``OVERHEAD_TOLERANCE``
(default 10%) below the bare run — the "observability is near-free"
gate.

Sharded control plane (DESIGN.md §14)::

    # the GO storm through N scheduler shards with work-stealing
    PYTHONPATH=src python benchmarks/bench_scheduler_fleet.py --shards 8

    # control-plane-only scale tier: 100k users hashed across 8 shards,
    # reporting jobs/s and bytes of RSS per queued job
    PYTHONPATH=src python benchmarks/bench_scheduler_fleet.py \
        --scale --shards 8 --users 100000 --out BENCH_scheduler_sharded.json

    # the N=1 bitwise-equivalence gate (exit 1 on any fingerprint drift)
    PYTHONPATH=src python benchmarks/bench_scheduler_fleet.py --fingerprint-check

``BENCH_scheduler_sharded.json`` is the committed full scale-tier
baseline and ``BENCH_scheduler_sharded_quick.json`` the quick-mode one
CI gates against (``--scale --quick --check ...``).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.auth import (  # noqa: E402
    AccountDatabase,
    Control,
    LdapDirectory,
    LdapPamModule,
    PamStack,
)
from repro.core.gcmu import install_gcmu  # noqa: E402
from repro.globusonline.service import GlobusOnline  # noqa: E402
from repro.globusonline.transfer import JobStatus  # noqa: E402
from repro.scheduler import (  # noqa: E402
    FleetScheduler,
    ScheduledTask,
    SchedulerConfig,
    SchedulerLimits,
    ShardedFleetScheduler,
    jain_index,
    scheduler_fingerprint,
)
from repro.sim.faults import ChaosConfig  # noqa: E402
from repro.sim.world import World  # noqa: E402
from repro.storage.data import SyntheticData  # noqa: E402
from repro.util import opcount  # noqa: E402
from repro.util.units import KB, MB, gbps  # noqa: E402
from repro.util.stats import percentile  # noqa: E402

SCHEMA = "bench_scheduler_fleet/v1"
DEFAULT_TOLERANCE = 0.30
WORKER_HOSTS = tuple(f"go-worker-{i}" for i in range(8))


def make_site(world, host, site_name, users, register_with, endpoint_name):
    """GCMU install with LDAP-backed users (mirrors tests/conftest.py)."""
    accounts = AccountDatabase()
    ldap = LdapDirectory(base_dn=f"dc={site_name}")
    for username, password in users.items():
        accounts.add_user(username)
        ldap.add_entry(username, password)
    pam = PamStack(f"myproxy-{site_name}").add(
        Control.SUFFICIENT, LdapPamModule(ldap))
    endpoint = install_gcmu(
        world, host, site_name, accounts, pam,
        register_with=register_with, endpoint_name=endpoint_name,
        charge_install_time=False)
    for username in users:
        endpoint.make_home(username)
    return endpoint


def build_fleet(seed: int, users: int, shards: int | None = None):
    """The soak topology at benchmark scale, chaos armed on the workers."""
    world = World(seed=seed, event_capacity=50_000, span_capacity=50_000)
    net = world.network
    for h in ("dtn-a", "dtn-b", "saas"):
        net.add_host(h, nic_bps=gbps(10))
    net.add_link("dtn-a", "dtn-b", gbps(10), 0.04, loss=1e-5)
    net.add_link("saas", "dtn-a", gbps(1), 0.02)
    net.add_link("saas", "dtn-b", gbps(1), 0.02)
    go = GlobusOnline(world, "saas", scheduler_config=SchedulerConfig(
        workers=len(WORKER_HOSTS),
        worker_hosts=WORKER_HOSTS,
        lease_s=120.0,
        heartbeat_s=20.0,
        max_task_attempts=50,
    ), shards=shards)
    ep_a = make_site(
        world, "dtn-a", "alcf",
        {f"user{i}": f"pw{i}" for i in range(users)},
        register_with=go, endpoint_name="alcf#dtn")
    ep_b = make_site(world, "dtn-b", "nersc", {"sink": "pwS"},
                     register_with=go, endpoint_name="nersc#dtn")
    world.chaos.configure(ChaosConfig(
        host_crash_every_s=120.0,
        host_downtime_s=(10.0, 40.0),
        horizon_s=6 * 3600.0,
    ))
    world.chaos.arm(hosts=list(WORKER_HOSTS))
    # MyProxy key pregeneration (a real myproxy-server feature): prime
    # search runs here, at provision time, instead of inside logons during
    # the timed drain.  Issued keys are bit-identical either way — the
    # pool replays the CA rng stream in issue order.
    ep_a.myproxy.ca.pregenerate(192)
    ep_b.myproxy.ca.pregenerate(192)
    return world, go, ep_a, ep_b


def run_bench(seed: int, users: int, jobs: int, quick: bool,
              observability: bool = False, shards: int | None = None) -> dict:
    world, go, ep_a, ep_b = build_fleet(seed, users, shards=shards)
    if observability:
        world.enable_observability()
    accounts = []
    for u in range(users):
        account = go.register_user(f"user{u}@globusid")
        go.activate(account, "alcf#dtn", f"user{u}", f"pw{u}")
        go.activate(account, "nersc#dtn", "sink", "pwS")
        accounts.append(account)

    # the drain allocates millions of short-lived events/spans that the
    # ring buffers drop almost immediately; cyclic-GC passes over that
    # churn are pure measurement noise, so collect once and pause the
    # collector for the timed region (reference counting still reclaims
    # the garbage — nothing here is cyclic)
    import gc
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    # crypto/protocol tallies for the timed region only: setup keygen
    # (CA construction, key pregeneration, user activation) is excluded,
    # so the diff counts exactly what the job storm itself performs
    ops_before = opcount.snapshot()
    t0 = time.perf_counter()
    submitted = []
    for n in range(jobs):
        u = n % users
        username = f"user{u}"
        uid = ep_a.accounts.get(username).uid
        # 3 of 4 jobs are sub-threshold small files (they coalesce into
        # pipelined batches); the rest stream alone.  The mix is keyed to
        # the per-user job index so every user submits the same byte
        # profile and the Jain index measures scheduling, not workload.
        small = (n // users) % 4 != 3
        size = 256 * KB if small else 8 * MB
        path = f"/home/{username}/j{n}.dat"
        ep_a.storage.write_file(path, SyntheticData(seed=n, length=size), uid=uid)
        submitted.append(go.submit_transfer(
            accounts[u], "alcf#dtn", path,
            "nersc#dtn", f"/home/sink/{username}-j{n}.dat", defer=True))
    submit_wall = time.perf_counter() - t0

    t1 = time.perf_counter()
    go.process_queue()
    drain_wall = time.perf_counter() - t1
    if gc_was_enabled:
        gc.enable()
    crypto_ops = opcount.since(ops_before)

    ok = sum(1 for j in submitted if j.status is JobStatus.SUCCEEDED)
    failed = len(submitted) - ok
    waits = [t.claimed_at - t.submitted_at
             for t in go.scheduler.completed_tasks]
    delivered = go.scheduler.queue.delivered_bytes()
    metrics = world.metrics

    def total(name: str) -> int:
        metric = metrics.get(name)
        return int(metric.total()) if metric is not None else 0

    total_wall = submit_wall + drain_wall
    observability_results = {}
    if observability:
        observability_results = {
            "flight_records": len(world.flight_recorder),
            "slo_alerts_fired": int(
                metrics.get("slo_alerts_total").total()),
        }
    return {
        "schema": SCHEMA,
        "quick": quick,
        "observability": observability,
        "scenario": {
            "seed": seed,
            "users": users,
            "jobs": jobs,
            "workers": len(WORKER_HOSTS),
            # only sharded runs carry the key: unsharded scenarios stay
            # byte-identical to the pre-sharding baselines
            **({"shards": shards} if shards is not None else {}),
        },
        "results": {
            "wall_s": round(total_wall, 4),
            "submit_wall_s": round(submit_wall, 4),
            "drain_wall_s": round(drain_wall, 4),
            "jobs_per_s": round(jobs / total_wall, 2),
            "succeeded": ok,
            "failed": failed,
            "virtual_duration_s": round(world.now, 2),
            "queue_wait_p50_s": round(percentile(waits, 0.50), 3),
            "queue_wait_p99_s": round(percentile(waits, 0.99), 3),
            "jain_fairness": round(jain_index(delivered.values()), 4),
            "bytes_delivered": sum(delivered.values()),
            "worker_crashes": total("scheduler_worker_crashes_total"),
            "requeues": total("scheduler_requeued_total"),
            "batches_coalesced": total("scheduler_batches_coalesced_total"),
            "batched_files": total("scheduler_batched_files_total"),
            **({"steals": total("scheduler_steals_total")}
               if shards is not None else {}),
            **observability_results,
        },
        # deterministic per-(seed, scenario) operation tallies — identical
        # on every machine, so CI can gate them exactly (see --check-crypto)
        "crypto_ops": crypto_ops,
        "env": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
    }


def _rss_bytes() -> int:
    """Resident set size, bytes.  /proc on Linux, ru_maxrss elsewhere."""
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    import resource
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS bytes
    return rss * 1024 if sys.platform != "darwin" else rss


def run_scale_bench(seed: int, users: int, jobs: int, shards: int,
                    quick: bool) -> dict:
    """The "millions of users" tier: control plane only, no data plane.

    100k users hashed across N shards, each submitting no-op jobs
    directly to the sharded scheduler — no Globus Online accounts, no
    topology, no byte movement — so the numbers isolate what the
    control plane itself costs: scheduler operations per second and
    resident bytes per queued job (sampled at peak queue depth, after
    the submit storm and before the drain).
    """
    import gc

    world = World(seed=seed, event_capacity=10_000, span_capacity=10_000)
    # scale tier runs admission wide open: the point is to *hold* a
    # 100k-user backlog, not to reject it at the door
    config = SchedulerConfig(
        workers=max(64, shards),
        lease_s=3600.0,
        heartbeat_s=600.0,
        limits=SchedulerLimits(
            max_queue_depth=None, max_queued_per_user=None,
            max_active_per_endpoint=None,
            max_bytes_in_flight_per_endpoint=None),
    )
    sched = ShardedFleetScheduler(world, config, shards=shards)
    size = 1_000_000

    gc.collect()
    rss_before = _rss_bytes()
    t0 = time.perf_counter()
    for n in range(jobs):
        sched.submit(ScheduledTask(
            task_id=f"task-{n}", user=f"user{n % users}",
            src_endpoint=f"src-{n % 64}", dst_endpoint=f"dst-{n % 64}",
            size_hint=size, execute=lambda: size, measure=lambda r: r,
        ))
    submit_wall = time.perf_counter() - t0
    queued = len(sched.queue)
    gc.collect()
    rss_peak = _rss_bytes()

    t1 = time.perf_counter()
    serviced = sched.run_until_idle(max_ticks=100_000_000)
    drain_wall = time.perf_counter() - t1
    assert serviced == jobs, f"lost jobs: {serviced} != {jobs}"

    total_wall = submit_wall + drain_wall
    rss_per_job = max(0, rss_peak - rss_before) / max(1, queued)
    delivered = sched.queue.delivered_bytes()
    return {
        "schema": SCHEMA,
        "quick": quick,
        "observability": False,
        "scenario": {
            "mode": "scale",
            "seed": seed,
            "users": users,
            "jobs": jobs,
            "shards": shards,
            "workers": config.workers,
        },
        "results": {
            "wall_s": round(total_wall, 4),
            "submit_wall_s": round(submit_wall, 4),
            "drain_wall_s": round(drain_wall, 4),
            "jobs_per_s": round(jobs / total_wall, 2),
            "submit_jobs_per_s": round(jobs / submit_wall, 2),
            "drain_jobs_per_s": round(jobs / drain_wall, 2),
            "succeeded": serviced,
            "failed": 0,
            "peak_queue_depth": queued,
            "rss_bytes_per_queued_job": round(rss_per_job, 1),
            "rss_peak_bytes": rss_peak,
            "jain_fairness": round(jain_index(delivered.values()), 4),
            "virtual_duration_s": round(world.now, 2),
        },
        "env": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
    }


def fingerprint_check(seed: int, users: int, jobs: int) -> int:
    """Exit 1 unless ShardedFleetScheduler(n=1) is bitwise FleetScheduler.

    Runs the identical direct-submission workload (crash chaos included)
    through both schedulers in separate worlds and compares the PR-5
    fingerprint field by field: completion order, per-task delivered
    bytes, per-user bytes, every lifecycle count, and the virtual clock.
    """
    def drive(sharded: bool) -> dict:
        world = World(seed=seed, event_capacity=10_000, span_capacity=10_000)
        world.chaos.configure(ChaosConfig(
            host_crash_every_s=600.0, host_downtime_s=(10.0, 30.0),
            horizon_s=10 * 24 * 3600.0,
        ))
        world.chaos.arm(hosts=list(WORKER_HOSTS))
        config = SchedulerConfig(
            workers=len(WORKER_HOSTS), worker_hosts=WORKER_HOSTS,
            lease_s=40.0, heartbeat_s=8.0, max_task_attempts=100)
        sched = (ShardedFleetScheduler(world, config, shards=1)
                 if sharded else FleetScheduler(world, config))
        for i in range(users):
            sched.set_weight(f"user{i}", 1.0 + (i % 4))
        for i in range(jobs):
            size = 1000 + (i * 7919) % 50000
            sched.submit(ScheduledTask(
                task_id="", user=f"user{i % users}",
                src_endpoint=f"ep-{i % 4}", dst_endpoint=f"ep-{(i + 1) % 4}",
                size_hint=size,
                execute=lambda size=size: (world.advance(2.0), size)[1],
                measure=lambda r: r,
            ))
        sched.run_until_idle(max_ticks=100_000_000)
        return scheduler_fingerprint(world, sched)

    single = drive(sharded=False)
    sharded = drive(sharded=True)
    failed = False
    for key in single:
        ok = sharded[key] == single[key]
        failed = failed or not ok
        detail = "" if ok else f"  single={single[key]!r}  sharded={sharded[key]!r}"
        if key in ("completion_order", "delivered_bytes", "bytes_by_user"):
            detail = "" if ok else "  (diverged)"
        print(f"[fingerprint] {key}: {'OK' if ok else 'MISMATCH'}{detail}")
    print(f"[fingerprint] {jobs} jobs / {users} users, "
          f"{int(single['crashes'])} crashes survived -> "
          f"{'FAIL' if failed else 'IDENTICAL'}")
    return 1 if failed else 0


def check_regression(current: dict, baseline_path: pathlib.Path) -> int:
    """Exit code 1 if jobs/sec or queue-wait p99 regressed beyond tolerance.

    jobs/sec is wall-clock (noisy across machines; the loose tolerance
    catches an O(n) scan returning, not CI jitter).  ``queue_wait_p99_s``
    is *virtual* time — deterministic per (seed, jobs, users) — so it is
    only compared when the scenarios match, and any drift there means
    scheduling behaviour changed, not that the machine was slow.
    """
    baseline = json.loads(baseline_path.read_text())
    tol = float(os.environ.get("BENCH_TOLERANCE", DEFAULT_TOLERANCE))
    failed = False

    base_rate = baseline["results"]["jobs_per_s"]
    cur_rate = current["results"]["jobs_per_s"]
    floor = base_rate * (1.0 - tol)
    verdict = "OK" if cur_rate >= floor else "REGRESSION"
    failed = failed or cur_rate < floor
    print(
        f"[check] jobs/sec: current={cur_rate:.1f} baseline={base_rate:.1f} "
        f"floor={floor:.1f} (tolerance {tol:.0%}) -> {verdict}"
    )

    base_p99 = baseline["results"].get("queue_wait_p99_s")
    if base_p99 is None or baseline.get("scenario") != current.get("scenario"):
        print("[check] queue wait p99: skipped (baseline scenario differs)")
    else:
        cur_p99 = current["results"]["queue_wait_p99_s"]
        ceiling = base_p99 * (1.0 + tol)
        verdict = "OK" if cur_p99 <= ceiling else "REGRESSION"
        failed = failed or cur_p99 > ceiling
        print(
            f"[check] queue wait p99 (virtual s): current={cur_p99:.3f} "
            f"baseline={base_p99:.3f} ceiling={ceiling:.3f} -> {verdict}"
        )

    base_rss = baseline["results"].get("rss_bytes_per_queued_job")
    cur_rss = current["results"].get("rss_bytes_per_queued_job")
    if base_rss is not None and cur_rss is not None:
        # Memory per queued job (scale tier only).  RSS is allocator- and
        # machine-dependent, so the same loose tolerance applies: this
        # catches a per-task bookkeeping structure growing a copy of the
        # queue, not malloc jitter.
        ceiling = base_rss * (1.0 + tol)
        verdict = "OK" if cur_rss <= ceiling else "REGRESSION"
        failed = failed or cur_rss > ceiling
        print(
            f"[check] RSS bytes/queued job: current={cur_rss:.1f} "
            f"baseline={base_rss:.1f} ceiling={ceiling:.1f} -> {verdict}"
        )

    return 1 if failed else 0


def check_crypto(current: dict, baseline_path: pathlib.Path) -> int:
    """Exit code 1 if any crypto/protocol op count exceeds the baseline.

    Unlike jobs/sec, these tallies are *deterministic* per (seed,
    scenario): every RSA exponentiation and GSI handshake the storm
    performs is fixed by the seeded streams.  The gate is therefore
    exact — a single extra ``rsa.sign`` means a session-layer cache
    stopped hitting, not that the machine was slow.  Counts *below*
    baseline pass with a note to refresh the committed file.
    """
    baseline = json.loads(baseline_path.read_text())
    if baseline.get("scenario") != current.get("scenario"):
        print("[crypto] skipped (baseline scenario differs)")
        return 0
    base_ops: dict = baseline.get("crypto_ops", {})
    cur_ops: dict = current.get("crypto_ops", {})
    failed = False
    improved = False
    for name in sorted(set(base_ops) | set(cur_ops)):
        base_n = int(base_ops.get(name, 0))
        cur_n = int(cur_ops.get(name, 0))
        if cur_n > base_n:
            failed = True
            verdict = "REGRESSION"
        elif cur_n < base_n:
            improved = True
            verdict = "improved"
        else:
            verdict = "OK"
        print(f"[crypto] {name}: current={cur_n} baseline={base_n} -> {verdict}")
    if failed:
        print("[crypto] FAIL: op counts above baseline (a cache stopped hitting)")
        return 1
    if improved:
        print(f"[crypto] counts dropped below baseline — refresh {baseline_path.name}")
    print("[crypto] OK")
    return 0


def overhead_check(seed: int, users: int, jobs: int, quick: bool) -> int:
    """Exit code 1 if full observability costs more than the tolerance.

    Best-of-2 wall-clock runs per mode: the max filters out one-off
    allocator/GC stalls the same way the CI bench-smoke gate does.  The
    virtual-time outcome must be bit-identical across modes — the
    recorder and SLO engine only observe — so that is asserted too.
    """
    tol = float(os.environ.get("OVERHEAD_TOLERANCE", "0.10"))
    best = {}
    virtual = {}
    for mode in (False, True):
        label = "observability" if mode else "bare"
        rates = []
        for _ in range(2):
            rep = run_bench(seed, users, jobs, quick=quick, observability=mode)
            rates.append(rep["results"]["jobs_per_s"])
            virtual[mode] = (rep["results"]["virtual_duration_s"],
                             rep["results"]["queue_wait_p99_s"],
                             rep["results"]["bytes_delivered"])
        best[mode] = max(rates)
        print(f"[overhead] {label}: best-of-2 {best[mode]:.1f} jobs/s "
              f"(runs: {', '.join(f'{r:.1f}' for r in rates)})")
    if virtual[False] != virtual[True]:
        print(f"[overhead] FAIL: virtual outcome diverged "
              f"bare={virtual[False]} instrumented={virtual[True]}")
        return 1
    floor = best[False] * (1.0 - tol)
    tax = 1.0 - best[True] / best[False]
    verdict = "OK" if best[True] >= floor else "REGRESSION"
    print(f"[overhead] tax {tax:+.1%} (tolerance {tol:.0%}, "
          f"floor {floor:.1f} jobs/s) -> {verdict}")
    return 0 if best[True] >= floor else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-smoke size (500 jobs, 50 users)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument("--users", type=int, default=None)
    parser.add_argument("--out", type=pathlib.Path,
                        default=REPO_ROOT / "BENCH_scheduler.json")
    parser.add_argument("--check", type=pathlib.Path, default=None,
                        help="baseline JSON to gate against (>30%% regression fails)")
    parser.add_argument("--observability", action="store_true",
                        help="attach the flight recorder + SLO engine")
    parser.add_argument("--overhead-check", action="store_true",
                        help="gate instrumented jobs/sec against the bare run "
                             "(OVERHEAD_TOLERANCE, default 10%%)")
    parser.add_argument("--shards", type=int, default=None,
                        help="run the sharded control plane with N shards")
    parser.add_argument("--scale", action="store_true",
                        help="control-plane-only scale tier: direct "
                             "submissions, no data plane (default 100000 "
                             "users / 2 jobs each / 8 shards)")
    parser.add_argument("--fingerprint-check", action="store_true",
                        help="gate ShardedFleetScheduler(n=1) bitwise against "
                             "FleetScheduler on the 5k-job/50-user workload")
    parser.add_argument("--crypto-ops", action="store_true",
                        help="print the deterministic crypto/protocol op "
                             "tallies for the timed region")
    parser.add_argument("--check-crypto", type=pathlib.Path, default=None,
                        help="baseline JSON for the exact crypto-op gate "
                             "(any count above baseline fails)")
    args = parser.parse_args(argv)

    if args.fingerprint_check:
        return fingerprint_check(
            args.seed,
            args.users if args.users is not None else 50,
            args.jobs if args.jobs is not None else 5000)

    if args.scale:
        users = args.users if args.users is not None else (
            5000 if args.quick else 100_000)
        jobs = args.jobs if args.jobs is not None else 2 * users
        shards = args.shards if args.shards is not None else 8
        report = run_scale_bench(args.seed, users, jobs, shards,
                                 quick=args.quick)
        args.out.write_text(json.dumps(report, indent=2) + "\n")
        r = report["results"]
        print(
            f"[scale] {jobs} jobs / {users} users / {shards} shards in "
            f"{r['wall_s']}s ({r['jobs_per_s']} jobs/s; submit "
            f"{r['submit_jobs_per_s']}, drain {r['drain_jobs_per_s']})"
        )
        print(
            f"[scale] {r['rss_bytes_per_queued_job']} RSS bytes per queued "
            f"job at depth {r['peak_queue_depth']}; jain {r['jain_fairness']}"
            f"  [saved to {args.out}]"
        )
        if args.check is not None:
            return check_regression(report, args.check)
        return 0

    users = args.users if args.users is not None else 50
    jobs = args.jobs if args.jobs is not None else (500 if args.quick else 5000)

    if args.overhead_check:
        return overhead_check(args.seed, users, jobs, quick=args.quick)

    report = run_bench(args.seed, users, jobs, quick=args.quick,
                       observability=args.observability, shards=args.shards)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    r = report["results"]
    shard_note = f" / {args.shards} shards" if args.shards is not None else ""
    print(
        f"{jobs} jobs / {users} users{shard_note} in {r['wall_s']}s "
        f"({r['jobs_per_s']} jobs/s wall, {r['virtual_duration_s']}s virtual)"
    )
    print(
        f"queue wait p50 {r['queue_wait_p50_s']}s p99 {r['queue_wait_p99_s']}s; "
        f"jain {r['jain_fairness']}; "
        f"{r['worker_crashes']} crashes, {r['requeues']} requeues, "
        f"{r['batches_coalesced']} batches ({r['batched_files']} files folded)"
        + (f", {r['steals']} steals" if "steals" in r else "")
    )
    print(f"succeeded {r['succeeded']} / failed {r['failed']}  [saved to {args.out}]")

    if args.crypto_ops:
        for name, count in sorted(report["crypto_ops"].items()):
            print(f"[crypto] {name}: {count}")

    rc = 0
    if args.check is not None:
        rc = check_regression(report, args.check)
    if args.check_crypto is not None:
        rc = max(rc, check_crypto(report, args.check_crypto))
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
