"""FIG2 — Figure 2: the PI/DTP architecture, shown through striping.

The figure's point is compositional: the same components build a
conventional server (PI+DTP in one process) or a striped server (one PI,
many DTPs).  The measurable consequence is bandwidth aggregation: N
stripe nodes with 1 Gb/s NICs approach N Gb/s of WAN throughput.  This
bench sweeps stripe count for a 20 GB transfer.
"""

from benchmarks._harness import report, run_once
from repro.gridftp.striped import StripedGridFTPServer
from repro.gridftp.third_party import third_party_transfer
from repro.gridftp.transfer import TransferOptions
from repro.gsi.authz import GridmapCallout
from repro.metrics.report import render_table
from repro.pki.dn import DistinguishedName as DN
from repro.scenarios import conventional_site
from repro.sim.world import World
from repro.storage.data import SyntheticData
from repro.storage.posix import PosixStorage
from repro.util.units import GB, MB, fmt_duration, fmt_rate, gbps

STRIPE_COUNTS = (1, 2, 4, 8)
PAYLOAD = 20 * GB


def run_fig2():
    world = World(seed=2)
    net = world.network
    net.add_router("wan", nic_bps=gbps(100))
    net.add_host("head", nic_bps=gbps(10))
    net.add_link("head", "wan", gbps(10), 0.01)
    for i in range(max(STRIPE_COUNTS)):
        net.add_host(f"dtp{i}", nic_bps=gbps(1))
        net.add_link(f"dtp{i}", "wan", gbps(1), 0.01)
    net.add_host("remote", nic_bps=gbps(10))
    net.add_link("remote", "wan", gbps(10), 0.02)
    net.add_host("laptop", nic_bps=gbps(1))
    net.add_link("laptop", "wan", gbps(1), 0.02)

    remote = conventional_site(world, "Remote", "remote")
    remote.add_user(world, "alice")
    uid = remote.accounts.get("alice").uid
    fs = PosixStorage(world.clock)
    fs.makedirs("/home/alice", 0)
    fs.chown("/home/alice", uid)
    fs.write_file("/home/alice/data.bin", SyntheticData(seed=3, length=PAYLOAD), uid=uid)

    opts = TransferOptions(parallelism=4, tcp_window_bytes=16 * MB)
    results = []
    for stripes in STRIPE_COUNTS:
        server = StripedGridFTPServer(
            world, "head", [f"dtp{i}" for i in range(stripes)],
            remote.ca.issue_credential(DN.parse("/O=Remote/OU=hosts/CN=head")),
            remote.trust, GridmapCallout(remote.gridmap), remote.accounts, fs,
            port=3000 + stripes, name=f"striped-{stripes}",
        ).start()
        client = remote.client_for(world, "alice", "laptop")
        src = client.connect(server)
        dst = client.connect(remote.server)
        res = third_party_transfer(src, "/home/alice/data.bin",
                                   dst, f"/home/alice/c{stripes}.bin", opts)
        results.append((stripes, res))
        src.quit(); dst.quit()
    return results


def test_fig2_striping_aggregates_bandwidth(benchmark):
    results = run_once(benchmark, run_fig2)
    base_rate = results[0][1].rate_bps
    rows = [
        [stripes, res.streams, fmt_rate(res.rate_bps),
         f"{res.rate_bps / base_rate:.2f}x", fmt_duration(res.duration_s),
         "yes" if res.verified else "NO"]
        for stripes, res in results
    ]
    report("fig2_striping", render_table(
        f"Figure 2 (reproduced): {PAYLOAD // GB} GB via striped servers "
        "(1 Gb/s DTP nodes, 4 streams/stripe)",
        ["stripes", "streams", "rate", "scaling", "duration", "verified"],
        rows,
    ))
    # shape: near-linear scaling while below the WAN/path ceiling
    rates = {s: r.rate_bps for s, r in results}
    assert rates[2] > 1.8 * rates[1]
    assert rates[4] > 3.4 * rates[1]
    assert rates[8] > 6.0 * rates[1]
    assert all(r.verified for _, r in results)
