"""FIG3 — Figure 3: the GCMU workflow.

Walks the five numbered steps — (1) user presents username/password to
MyProxy Online CA, (2) PAM checks the local authentication system,
(3) a short-lived certificate with the username in its DN is issued,
(4) the user authenticates to GridFTP with it, (5) the AUTHZ callout
parses the username from the DN and local authorization (setuid) runs —
and reports what each step produced, plus the failure paths (bad
password, locked account).
"""


from benchmarks._harness import report, run_once
from repro.errors import AuthenticationError
from repro.gridftp.client import GridFTPClient
from repro.metrics.report import render_table
from repro.myproxy.client import myproxy_logon
from repro.pki.validation import TrustStore
from repro.scenarios import gcmu_site
from repro.sim.world import World
from repro.util.units import fmt_duration, gbps


def run_fig3():
    world = World(seed=3)
    net = world.network
    net.add_host("dtn", nic_bps=gbps(10))
    net.add_host("laptop", nic_bps=gbps(1))
    net.add_link("dtn", "laptop", gbps(1), 0.01)
    ep = gcmu_site(world, "dtn", "siteX", {"alice": "pwA", "bob": "pwB"})

    steps = []
    trust = TrustStore()

    # steps 1-3: password -> PAM -> short-lived certificate
    t0 = world.now
    cred = myproxy_logon(world, "laptop", ep.myproxy, "alice", "pwA", trust=trust)
    steps.append(("1-3", "myproxy-logon (password via PAM -> certificate)",
                  f"subject={cred.subject}", world.now - t0))

    # step 4: GSI authentication to the GridFTP server
    t0 = world.now
    client = GridFTPClient(world, "laptop", credential=cred, trust=trust)
    session = client.connect(ep.server, login=False)
    session.login()
    steps.append(("4", "GSI authentication to GridFTP",
                  f"peer identity accepted", world.now - t0))

    # step 5: authorization — username parsed from the DN, setuid
    authz_event = world.log.select("gridftp.authz.ok")[-1]
    steps.append(("5", "AUTHZ callout + local authorization",
                  f"local user={authz_event.fields['local_user']} "
                  f"via {authz_event.fields['callout']}", 0.0))

    # failure paths
    failures = []
    try:
        myproxy_logon(world, "laptop", ep.myproxy, "alice", "wrong")
    except AuthenticationError as exc:
        failures.append(("bad password", "rejected at step 2", str(exc)[:50]))
    ep.accounts.lock("bob")
    cred_b = myproxy_logon(world, "laptop", ep.myproxy, "bob", "pwB", trust=trust)
    try:
        GridFTPClient(world, "laptop", credential=cred_b, trust=trust).connect(ep.server)
    except AuthenticationError as exc:
        failures.append(("locked account", "rejected at step 5", str(exc)[:50]))

    mapped_user = session.logged_in_as
    return steps, failures, mapped_user, ep


def test_fig3_gcmu_workflow(benchmark):
    steps, failures, mapped_user, ep = run_once(benchmark, run_fig3)
    rows = [[s, desc, outcome, fmt_duration(dt) if dt else "-"]
            for s, desc, outcome, dt in steps]
    txt = render_table(
        "Figure 3 (reproduced): the GCMU workflow, step by step",
        ["step", "action", "outcome", "virtual time"],
        rows,
    )
    txt += "\n\n" + render_table(
        "Failure paths",
        ["scenario", "where it stops", "error"],
        [list(f) for f in failures],
    )
    report("fig3_gcmu_workflow", txt)

    assert mapped_user == "alice"
    assert len(failures) == 2
    # the whole happy path took seconds of virtual time, not days
    assert sum(dt for *_, dt in steps) < 30.0
    # and no gridmap exists anywhere in the deployment
    assert ep.server.authz.name == "gcmu-myproxy-dn"
