"""Shared plumbing for the benchmark suite.

Every benchmark reproduces one paper artifact (see DESIGN.md section 4).
Its scenario runs deterministically inside a fresh ``World``; the
pytest-benchmark fixture measures how fast the *simulator* executes it,
while :func:`report` emits the paper-style table — to stdout (visible
with ``pytest -s``) and to ``benchmarks/results/<name>.txt`` so
EXPERIMENTS.md numbers are regenerable.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def report(name: str, text: str) -> str:
    """Print and persist one benchmark's rendered table."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")
    return text


def run_once(benchmark, fn):
    """Benchmark ``fn`` with a single measured round.

    The scenarios are deterministic (virtual time, seeded RNG), so one
    round reproduces the exact same tables every run; the timing column
    then reports the simulator's wall-clock cost for that scenario.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
