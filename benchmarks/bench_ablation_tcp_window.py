"""ABLATION — TCP socket buffers: the other half of the tuning story.

Sweeps the window size for a single stream on a 100 ms path.  Shape:
rate = window/RTT until either the loss limit or the bottleneck takes
over; the knee sits at the bandwidth-delay product.  This is why SBUF
(and kernel autotuning on DTNs) matter, and why the era-default 64 KiB
is catastrophic on WANs.
"""

from benchmarks._harness import report, run_once
from repro.gridftp.tuning import bandwidth_delay_product
from repro.net.tcp import TCPModel, tcp_stream_rate
from repro.sim.world import World
from repro.metrics.report import render_table
from repro.util.units import KB, MB, fmt_bytes, fmt_rate, gbps

WINDOWS = (64 * KB, 256 * KB, 1 * MB, 4 * MB, 16 * MB, 64 * MB, 256 * MB)


def run_ablation():
    world = World(seed=21)
    net = world.network
    net.add_host("src", nic_bps=gbps(10))
    net.add_host("dst", nic_bps=gbps(10))
    net.add_link("src", "dst", gbps(10), 0.05, loss=1e-6)  # 100 ms RTT
    path = net.path("src", "dst")
    rates = [tcp_stream_rate(path, TCPModel(window_bytes=w)) for w in WINDOWS]
    return path, rates


def test_ablation_tcp_window(benchmark):
    path, rates = run_once(benchmark, run_ablation)
    bdp = bandwidth_delay_product(path)
    rows = [
        [fmt_bytes(w), fmt_rate(r), f"{r / rates[0]:.0f}x",
         "<- era default" if w == 64 * KB else
         ("~BDP region" if 0.3 * bdp <= w <= 3 * bdp else "")]
        for w, r in zip(WINDOWS, rates)
    ]
    report("ablation_tcp_window", render_table(
        f"ABLATION: single-stream rate vs window, 100 ms RTT "
        f"(BDP = {fmt_bytes(bdp)})",
        ["window", "rate", "vs 64 KiB", "note"],
        rows,
    ))
    # window-limited region: rate doubles with the window
    assert abs(rates[1] / rates[0] - 4.0) < 0.01  # 64K -> 256K = 4x
    # past the loss/bottleneck knee, more window stops helping
    assert rates[-1] == rates[-2]
    # the era default leaves >95% of a clean-ish 10 Gb/s path unused
    assert rates[0] < 0.05 * gbps(10)
