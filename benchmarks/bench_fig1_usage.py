"""FIG1 — Figure 1: Globus GridFTP usage data.

Regenerates the paper's usage series: transfers/day and bytes/day across
a multi-year fleet growth window, ending (as Section II.A reports) at
roughly 5,000 deployed servers, >10 million transfers/day and ~0.5 PB
moved per day — aggregated from the reporting subset of servers through
the same usage-collector path a live server feeds.
"""

from benchmarks._harness import report, run_once
from repro.metrics.report import render_series, render_table
from repro.metrics.usage import UsageCollector
from repro.util.units import PB, fmt_bytes
from repro.workloads.fleet import FleetModel


def run_fig1():
    model = FleetModel(seed=2012)
    collector = UsageCollector()
    for day in model.series(step_days=7):
        collector.add_aggregate(
            day_index=day.day_index,
            transfers=day.transfers,
            bytes_moved=day.bytes_moved,
            servers=day.servers_reporting,
        )
    xs, transfers, nbytes = collector.series()
    final = model.day(model.days - 1)
    return model, collector, xs, transfers, nbytes, final


def test_fig1_usage_series(benchmark):
    model, collector, xs, transfers, nbytes, final = run_once(benchmark, run_fig1)

    series_txt = render_series(
        "Figure 1 (reproduced): GridFTP usage growth, weekly samples over 4 years",
        "day",
        xs,
        {
            "transfers/day": transfers,
            "GB/day": [b / 1e9 for b in nbytes],
            "servers reporting": [collector.day(d).server_count for d in xs],
        },
    )
    summary_txt = render_table(
        "Figure 1 endpoint values: paper vs reproduced (final simulated day)",
        ["metric", "paper (Section II.A)", "reproduced"],
        [
            ["deployed servers", "> 5,000", final.servers_total],
            ["transfers per day", "> 10 million", f"{final.transfers:,}"],
            ["data moved per day", "~ 0.5 PB", fmt_bytes(final.bytes_moved)],
        ],
    )
    report("fig1_usage", series_txt + "\n\n" + summary_txt)

    # shape assertions: growth and endpoints in the paper's ballpark
    assert final.servers_total >= 4900
    assert final.transfers > 5e6
    assert 0.2 * PB < final.bytes_moved < 1.0 * PB
    assert transfers[0] < transfers[-1] / 5
